package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"aapm/internal/telemetry"
)

func TestSampleHashDeterministic(t *testing.T) {
	for _, id := range []string{"t0011223344556677", "tdeadbeefcafef00d", "x"} {
		first := sampleHash(id, 0.37)
		for i := 0; i < 10; i++ {
			if sampleHash(id, 0.37) != first {
				t.Fatalf("sampleHash(%q) flapped", id)
			}
		}
	}
	if sampleHash("anything", 0) {
		t.Fatal("rate 0 must never sample")
	}
	if !sampleHash("anything", 1) {
		t.Fatal("rate 1 must always sample")
	}
}

func TestSampleHashDistribution(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0.5, MaxTraces: 20000})
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if tr.Start("j", "", nil).Sampled() {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("0.5 sampling hit fraction %.3f, want ~0.5", frac)
	}
}

func TestTracerUnsampledStillMintsID(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0})
	h := tr.Start("j1234", "acme", nil)
	if h == nil || h.Sampled() {
		t.Fatalf("want non-nil unsampled trace, got %+v", h)
	}
	if !strings.HasPrefix(h.TraceID(), "t") || len(h.TraceID()) != 17 {
		t.Fatalf("trace ID %q, want t+16 hex", h.TraceID())
	}
	h.Record(Span{Name: "intake"})
	if _, _, ok := tr.Spans(h.TraceID()); ok {
		t.Fatal("unsampled trace must not enter the span store")
	}
}

func TestTracerTenantRateOverride(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0, TenantRate: map[string]float64{"vip": 1}})
	if tr.Start("j", "other", nil).Sampled() {
		t.Fatal("default rate 0 sampled a non-override tenant")
	}
	if !tr.Start("j", "vip", nil).Sampled() {
		t.Fatal("tenant override rate 1 did not sample")
	}
}

func TestTracerSpanRingBounds(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, MaxSpansPerTrace: 4})
	h := tr.Start("job", "", nil)
	for i := 0; i < 10; i++ {
		h.Record(Span{Name: string(rune('a' + i))})
	}
	spans, dropped, ok := tr.Spans(h.TraceID())
	if !ok {
		t.Fatal("trace missing from store")
	}
	if len(spans) != 4 || dropped != 6 {
		t.Fatalf("got %d spans dropped %d, want 4 dropped 6", len(spans), dropped)
	}
	// Oldest-first unrolling: the last four recorded names, in order.
	want := []string{"g", "h", "i", "j"}
	for i, s := range spans {
		if s.Name != want[i] {
			t.Fatalf("span[%d] = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestTracerTraceEviction(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, MaxTraces: 2})
	a := tr.Start("a", "", nil)
	b := tr.Start("b", "", nil)
	c := tr.Start("c", "", nil) // evicts a
	if _, _, ok := tr.Spans(a.TraceID()); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	for _, h := range []*Trace{b, c} {
		if _, _, ok := tr.Spans(h.TraceID()); !ok {
			t.Fatalf("trace %s missing", h.TraceID())
		}
	}
	// Recording on the evicted trace must be safe and a no-op.
	a.Record(Span{Name: "late"})
}

func TestTracerExportTee(t *testing.T) {
	var buf bytes.Buffer
	tw := telemetry.NewTraceEventWriter(&buf)
	tr := NewTracer(Config{SampleRate: 1, Export: tw})
	h := tr.Start("jx", "acme", nil)
	h.Record(Span{Name: "run", VirtUS: 100, VirtDurUS: 50, Attrs: map[string]float64{"power_w": 12}})
	if tw.Events() != 2 { // process_name metadata + the span
		t.Fatalf("exported %d events, want 2", tw.Events())
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var events []telemetry.TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("exported stream is not valid trace-event JSON: %v\n%s", err, buf.String())
	}
	var span *telemetry.TraceEvent
	for i := range events {
		if events[i].Ph == "X" && events[i].Name == "run" {
			span = &events[i]
		}
	}
	if span == nil {
		t.Fatalf("no X span event exported; got %+v", events)
	}
	if span.TS != 100 || span.Dur != 50 || span.Args["power_w"] != 12.0 {
		t.Fatalf("exported span fields wrong: %+v", span)
	}
}

func TestTraceRecordTeesFlight(t *testing.T) {
	fl := NewFlightRecorder(8)
	tr := NewTracer(Config{SampleRate: 0}) // unsampled: flight still sees spans
	h := tr.Start("j", "", fl)
	h.Record(Span{Name: "queue-wait", WallDurUS: 123})
	d := fl.Dump()
	if len(d.Events) != 1 || d.Events[0].Kind != "span" || d.Events[0].Name != "queue-wait" || d.Events[0].Value != 123 {
		t.Fatalf("flight dump %+v", d)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	h := tr.Start("j", "", nil)
	if h != nil {
		t.Fatal("nil tracer must return nil trace")
	}
	h.Record(Span{Name: "x"})
	if h.Sampled() || h.TraceID() != "" {
		t.Fatal("nil trace accessors")
	}
	var fl *FlightRecorder
	fl.Note(FlightEvent{Kind: "state"})
	if d := fl.Dump(); len(d.Events) != 0 {
		t.Fatal("nil flight dump")
	}
	var e *Engine
	e.Observe("x", true)
	e.ObserveLatency("x", 1)
	e.ObserveKey("x", "k")
	if st := e.Status(); !st.Healthy {
		t.Fatal("nil engine must be healthy")
	}
	if ok, _ := e.Healthy(); !ok {
		t.Fatal("nil engine Healthy")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil trace")
	}
	tr := NewTracer(Config{SampleRate: 1})
	h := tr.Start("j", "", nil)
	ctx := NewContext(context.Background(), h)
	if FromContext(ctx) != h {
		t.Fatal("context round trip lost the trace")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("nil trace must not wrap the context")
	}
}

func TestFromContextAllocs(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0})
	h := tr.Start("j", "", nil)
	ctx := NewContext(context.Background(), h)
	allocs := testing.AllocsPerRun(100, func() {
		got := FromContext(ctx)
		if got.Sampled() {
			t.Fatal("unexpected sampled")
		}
	})
	if allocs != 0 {
		t.Fatalf("FromContext allocates %.1f per call, want 0", allocs)
	}
}

func TestFlightRingWraparound(t *testing.T) {
	fl := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		fl.Note(FlightEvent{Kind: "state", Name: string(rune('a' + i)), Wall: time.Unix(int64(i), 0)})
	}
	d := fl.Dump()
	if d.Capacity != 3 || d.Dropped != 2 || len(d.Events) != 3 {
		t.Fatalf("dump %+v", d)
	}
	for i, want := range []string{"c", "d", "e"} {
		if d.Events[i].Name != want {
			t.Fatalf("event[%d] = %q, want %q (oldest first)", i, d.Events[i].Name, want)
		}
	}
}

func TestFlightStampsWall(t *testing.T) {
	fl := NewFlightRecorder(0)
	fl.Note(FlightEvent{Kind: "state", Name: "queued"})
	d := fl.Dump()
	if d.Capacity != 128 {
		t.Fatalf("default capacity %d, want 128", d.Capacity)
	}
	if d.Events[0].Wall.IsZero() {
		t.Fatal("Note must stamp a zero Wall")
	}
}

// fakeClock drives the SLO engine deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) step(d time.Duration)        { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func objState(t *testing.T, e *Engine, name string) ObjectiveStatus {
	t.Helper()
	for _, o := range e.Status().Objectives {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("objective %q missing", name)
	return ObjectiveStatus{}
}

func TestSLOEventsBurnAndBreach(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine([]Objective{{
		Name: "errors", Kind: KindEvents, Budget: 0.1,
		FastWindow: time.Minute, SlowWindow: 10 * time.Minute,
		BurnThreshold: 2, MinSamples: 5,
	}}, clk.now)

	for i := 0; i < 10; i++ {
		e.Observe("errors", true)
	}
	if ok, _ := e.Healthy(); !ok {
		t.Fatal("all-good stream must be healthy")
	}
	// 10 good + 10 bad = 50% bad, burn = 0.5/0.1 = 5 on both windows.
	for i := 0; i < 10; i++ {
		e.Observe("errors", false)
	}
	ok, reasons := e.Healthy()
	if ok || len(reasons) != 1 {
		t.Fatalf("want breach with one reason, got ok=%v reasons=%v", ok, reasons)
	}
	st := objState(t, e, "errors")
	if st.FastBurn != 5 || st.SlowBurn != 5 || !st.Breaching {
		t.Fatalf("burns %v/%v breaching %v, want 5/5 true", st.FastBurn, st.SlowBurn, st.Breaching)
	}
	if st.PeakFastBurn < 5 {
		t.Fatalf("peak fast burn %v, want >= 5", st.PeakFastBurn)
	}

	// Advance past the fast window: fast clears, slow still burns → no
	// breach (both windows must burn).
	clk.step(2 * time.Minute)
	st = objState(t, e, "errors")
	if st.FastBurn != 0 || st.SlowBurn != 5 {
		t.Fatalf("after fast expiry: fast %v slow %v, want 0/5", st.FastBurn, st.SlowBurn)
	}
	if st.Breaching {
		t.Fatal("fast window clear must end the breach")
	}
	// Advance past the slow window: everything expires.
	clk.step(11 * time.Minute)
	st = objState(t, e, "errors")
	if st.SlowBurn != 0 || st.SlowSamples != 0 {
		t.Fatalf("after slow expiry: %+v", st)
	}
	// Peaks persist as high-water marks.
	if st.PeakFastBurn < 5 || st.PeakSlowBurn < 5 {
		t.Fatalf("peaks must persist: %+v", st)
	}
}

func TestSLOMinSamplesGate(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine([]Objective{{
		Name: "errors", Kind: KindEvents, Budget: 0.01,
		FastWindow: time.Minute, SlowWindow: time.Minute,
		BurnThreshold: 1, MinSamples: 10,
	}}, clk.now)
	for i := 0; i < 9; i++ {
		e.Observe("errors", false)
	}
	if ok, _ := e.Healthy(); !ok {
		t.Fatal("below MinSamples must not breach even at 100% bad")
	}
	e.Observe("errors", false)
	if ok, _ := e.Healthy(); ok {
		t.Fatal("at MinSamples with 100% bad must breach")
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine([]Objective{{
		Name: "submit_p99", TargetSec: 0.25, Budget: 0.5,
		FastWindow: time.Minute, SlowWindow: time.Minute,
		BurnThreshold: 1.5, MinSamples: 4,
	}}, clk.now)
	st := objState(t, e, "submit_p99")
	if st.Kind != KindLatency {
		t.Fatalf("TargetSec>0 must default kind to latency, got %q", st.Kind)
	}
	e.ObserveLatency("submit_p99", 0.1)
	e.ObserveLatency("submit_p99", 0.2)
	e.ObserveLatency("submit_p99", 0.9)
	e.ObserveLatency("submit_p99", 1.5)
	// 2/4 over target = 50% bad, burn = 0.5/0.5 = 1 < 1.5.
	if ok, _ := e.Healthy(); !ok {
		t.Fatal("burn 1 below threshold 1.5 must be healthy")
	}
	e.ObserveLatency("submit_p99", 2)
	e.ObserveLatency("submit_p99", 2)
	// 4/6 bad, burn = (4/6)/0.5 ≈ 1.33 < 1.5 still healthy.
	e.ObserveLatency("submit_p99", 2)
	e.ObserveLatency("submit_p99", 2)
	// 6/8 bad, burn = 1.5 → breach.
	if ok, _ := e.Healthy(); ok {
		t.Fatal("burn at threshold must breach")
	}
}

func TestSLOShareObjective(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine([]Objective{{
		Name: "fairness", Kind: KindShare, MaxDeviation: 0.1,
		Weights:    map[string]float64{"a": 2, "b": 1},
		FastWindow: time.Minute, SlowWindow: time.Minute,
		BurnThreshold: 1, MinSamples: 6,
	}}, clk.now)
	// Perfect 2:1 split → zero deviation.
	for i := 0; i < 8; i++ {
		e.ObserveKey("fairness", "a")
	}
	for i := 0; i < 4; i++ {
		e.ObserveKey("fairness", "b")
	}
	st := objState(t, e, "fairness")
	if st.FastBurn != 0 || st.Breaching {
		t.Fatalf("perfect split burn %v breaching %v", st.FastBurn, st.Breaching)
	}
	// Starve b: a=20, b=4 → share a 5/6 vs want 2/3, dev 1/6 → burn ~1.67.
	for i := 0; i < 12; i++ {
		e.ObserveKey("fairness", "a")
	}
	st = objState(t, e, "fairness")
	if !st.Breaching {
		t.Fatalf("starved tenant must breach: %+v", st)
	}
}

func TestSLOShareSingleKeyNoBreach(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine([]Objective{{
		Name: "fairness", Kind: KindShare, MaxDeviation: 0.01,
		FastWindow: time.Minute, SlowWindow: time.Minute,
		BurnThreshold: 1, MinSamples: 1,
	}}, clk.now)
	for i := 0; i < 50; i++ {
		e.ObserveKey("fairness", "only")
	}
	if ok, _ := e.Healthy(); !ok {
		t.Fatal("one active tenant cannot be unfair to itself")
	}
}

func TestSLOUnknownObjectiveIgnored(t *testing.T) {
	e := NewEngine(nil, nil)
	e.Observe("nope", false)
	e.ObserveLatency("nope", 99)
	e.ObserveKey("nope", "k")
	if ok, _ := e.Healthy(); !ok {
		t.Fatal("engine with no objectives must be healthy")
	}
}
