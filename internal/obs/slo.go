package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Objective kinds.
const (
	// KindEvents judges a good/bad event stream against an error
	// budget (Budget = allowed bad fraction).
	KindEvents = "events"
	// KindLatency is KindEvents with the classification built in: a
	// sample is bad when its latency exceeds TargetSec. Budget 0.01
	// with TargetSec 0.25 reads "p99 ≤ 250 ms".
	KindLatency = "latency"
	// KindShare judges per-key event shares (e.g. per-tenant
	// completions) against weighted fair shares: the windowed metric is
	// the maximum absolute deviation from the weight share, judged
	// against MaxDeviation.
	KindShare = "share"
)

// Objective is one declarative service-level objective.
type Objective struct {
	// Name identifies the objective in Observe calls and status output.
	Name string
	// Kind is one of KindEvents, KindLatency, KindShare; "" selects
	// KindEvents (KindLatency when TargetSec > 0).
	Kind string
	// Description is surfaced in /api/slo.
	Description string
	// TargetSec classifies KindLatency samples: latency > TargetSec is
	// bad.
	TargetSec float64
	// Budget is the allowed bad fraction for events/latency kinds
	// (burn = badFraction / Budget). 0 selects 0.01.
	Budget float64
	// MaxDeviation is the KindShare tolerance (burn = deviation /
	// MaxDeviation). 0 selects 0.2.
	MaxDeviation float64
	// Weights are the KindShare fair-share weights per key; unlisted
	// keys weigh 1.
	Weights map[string]float64
	// FastWindow/SlowWindow are the two burn-rate windows; 0 selects
	// 5m / 1h. An objective breaches only when BOTH windows burn at or
	// above BurnThreshold — the fast window catches the spike, the slow
	// window keeps a transient blip from flapping the health endpoint.
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold is the breach threshold on burn rate; 0 selects 2
	// (consuming budget twice as fast as allowed).
	BurnThreshold float64
	// MinSamples gates breaching: fewer fast-window samples than this
	// can never breach (a cold service is healthy, not 100% errored).
	// 0 selects 10.
	MinSamples int
}

// withDefaults resolves an objective's zero values.
func (o Objective) withDefaults() Objective {
	if o.Kind == "" {
		o.Kind = KindEvents
		if o.TargetSec > 0 {
			o.Kind = KindLatency
		}
	}
	if o.Budget <= 0 {
		o.Budget = 0.01
	}
	if o.MaxDeviation <= 0 {
		o.MaxDeviation = 0.2
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 5 * time.Minute
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = time.Hour
	}
	if o.SlowWindow < o.FastWindow {
		o.SlowWindow = o.FastWindow
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 2
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 10
	}
	return o
}

// ObjectiveStatus is one objective's evaluated state — the JSON shape
// /api/slo serves.
type ObjectiveStatus struct {
	Name          string  `json:"name"`
	Kind          string  `json:"kind"`
	Description   string  `json:"description,omitempty"`
	TargetSec     float64 `json:"target_sec,omitempty"`
	Budget        float64 `json:"budget,omitempty"`
	MaxDeviation  float64 `json:"max_deviation,omitempty"`
	BurnThreshold float64 `json:"burn_threshold"`
	FastWindowSec float64 `json:"fast_window_sec"`
	SlowWindowSec float64 `json:"slow_window_sec"`
	// FastBurn/SlowBurn are the current burn rates (observed bad
	// fraction ÷ budget, or share deviation ÷ tolerance); Peak* their
	// high-water marks since the engine started.
	FastBurn     float64 `json:"fast_burn"`
	SlowBurn     float64 `json:"slow_burn"`
	PeakFastBurn float64 `json:"peak_fast_burn"`
	PeakSlowBurn float64 `json:"peak_slow_burn"`
	FastSamples  float64 `json:"fast_samples"`
	SlowSamples  float64 `json:"slow_samples"`
	Breaching    bool    `json:"breaching"`
	Reason       string  `json:"reason,omitempty"`
}

// SLOStatus is the full /api/slo document.
type SLOStatus struct {
	Healthy    bool              `json:"healthy"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// Engine evaluates objectives with multi-window burn-rate accounting.
// Events land in fixed-duration time buckets (fast window ÷ 30, so 10 s
// buckets at the 5 m default) on a ring covering the slow window; the
// two window sums slide bucket-by-bucket. The clock is injectable, so
// the windows run over wall time in a live service and over a fake (or
// virtual) clock in tests and simulations. Safe for concurrent use.
type Engine struct {
	now func() time.Time

	mu   sync.Mutex
	objs []*objectiveState
	by   map[string]*objectiveState
}

// objectiveState is one objective's windowed accounting.
type objectiveState struct {
	o         Objective
	bucketDur time.Duration
	buckets   []sloBucket
	head      int   // ring index of the current bucket
	cur       int64 // bucket epoch (now / bucketDur) at head; 0 = unstarted
	peakFast  float64
	peakSlow  float64
}

type sloBucket struct {
	good, bad float64
	byKey     map[string]float64
}

// NewEngine builds an engine over the objectives. clock nil selects
// time.Now. A nil *Engine is valid and records nothing.
func NewEngine(objectives []Objective, clock func() time.Time) *Engine {
	if clock == nil {
		clock = time.Now
	}
	e := &Engine{now: clock, by: make(map[string]*objectiveState)}
	for _, o := range objectives {
		o = o.withDefaults()
		bucketDur := o.FastWindow / 30
		if bucketDur < time.Second {
			bucketDur = time.Second
		}
		n := int(o.SlowWindow/bucketDur) + 1
		st := &objectiveState{o: o, bucketDur: bucketDur, buckets: make([]sloBucket, n)}
		e.objs = append(e.objs, st)
		e.by[o.Name] = st
	}
	return e
}

// Observe records one good/bad event on an events-kind objective.
// Unknown names are ignored (objectives are configuration; emitters
// should not crash the service over a renamed one).
func (e *Engine) Observe(name string, good bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.by[name]
	if st == nil {
		return
	}
	b := st.advance(e.now())
	if good {
		b.good++
	} else {
		b.bad++
	}
	st.notePeaks(e.now())
}

// ObserveLatency records one latency sample on a latency-kind
// objective (bad when latencySec exceeds the target).
func (e *Engine) ObserveLatency(name string, latencySec float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	st := e.by[name]
	if st == nil {
		e.mu.Unlock()
		return
	}
	good := latencySec <= st.o.TargetSec
	b := st.advance(e.now())
	if good {
		b.good++
	} else {
		b.bad++
	}
	st.notePeaks(e.now())
	e.mu.Unlock()
}

// ObserveKey records one keyed event on a share-kind objective (e.g.
// one completion for a tenant).
func (e *Engine) ObserveKey(name, key string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.by[name]
	if st == nil {
		return
	}
	b := st.advance(e.now())
	if b.byKey == nil {
		b.byKey = make(map[string]float64)
	}
	b.byKey[key]++
	b.good++
	st.notePeaks(e.now())
}

// advance rotates the ring up to now and returns the current bucket.
// Callers hold e.mu.
func (st *objectiveState) advance(now time.Time) *sloBucket {
	epoch := now.UnixNano() / int64(st.bucketDur)
	if st.cur == 0 {
		st.cur = epoch
	}
	steps := epoch - st.cur
	if steps < 0 {
		steps = 0 // clock went backwards; keep accumulating in place
	}
	if steps > int64(len(st.buckets)) {
		steps = int64(len(st.buckets))
	}
	for i := int64(0); i < steps; i++ {
		st.head = (st.head + 1) % len(st.buckets)
		st.buckets[st.head] = sloBucket{}
	}
	st.cur = epoch
	return &st.buckets[st.head]
}

// window sums the last n buckets ending at head.
func (st *objectiveState) window(d time.Duration) (good, bad float64, byKey map[string]float64) {
	n := int(d / st.bucketDur)
	if n < 1 {
		n = 1
	}
	if n > len(st.buckets) {
		n = len(st.buckets)
	}
	if st.o.Kind == KindShare {
		byKey = make(map[string]float64)
	}
	for i := 0; i < n; i++ {
		b := &st.buckets[(st.head-i+len(st.buckets))%len(st.buckets)]
		good += b.good
		bad += b.bad
		for k, v := range b.byKey {
			byKey[k] += v
		}
	}
	return good, bad, byKey
}

// burn evaluates one window's burn rate and sample count.
func (st *objectiveState) burn(d time.Duration) (burn, samples float64) {
	good, bad, byKey := st.window(d)
	samples = good + bad
	switch st.o.Kind {
	case KindShare:
		if samples < float64(st.o.MinSamples) || len(byKey) < 2 {
			return 0, samples
		}
		var sumW float64
		for k := range byKey {
			sumW += st.weight(k)
		}
		var dev float64
		for k, c := range byKey {
			want := st.weight(k) / sumW
			got := c / samples
			if diff := abs(got - want); diff > dev {
				dev = diff
			}
		}
		return dev / st.o.MaxDeviation, samples
	default:
		if samples == 0 {
			return 0, 0
		}
		return (bad / samples) / st.o.Budget, samples
	}
}

func (st *objectiveState) weight(key string) float64 {
	if w, ok := st.o.Weights[key]; ok && w > 0 {
		return w
	}
	return 1
}

// notePeaks refreshes the burn high-water marks after an observation.
// Callers hold e.mu.
func (st *objectiveState) notePeaks(now time.Time) {
	st.advance(now)
	if f, _ := st.burn(st.o.FastWindow); f > st.peakFast {
		st.peakFast = f
	}
	if s, _ := st.burn(st.o.SlowWindow); s > st.peakSlow {
		st.peakSlow = s
	}
}

// Status evaluates every objective as of now. Objectives are reported
// in registration order.
func (e *Engine) Status() SLOStatus {
	out := SLOStatus{Healthy: true}
	if e == nil {
		return out
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	for _, st := range e.objs {
		st.advance(now)
		fast, fastN := st.burn(st.o.FastWindow)
		slow, slowN := st.burn(st.o.SlowWindow)
		if fast > st.peakFast {
			st.peakFast = fast
		}
		if slow > st.peakSlow {
			st.peakSlow = slow
		}
		os := ObjectiveStatus{
			Name:          st.o.Name,
			Kind:          st.o.Kind,
			Description:   st.o.Description,
			TargetSec:     st.o.TargetSec,
			BurnThreshold: st.o.BurnThreshold,
			FastWindowSec: st.o.FastWindow.Seconds(),
			SlowWindowSec: st.o.SlowWindow.Seconds(),
			FastBurn:      fast,
			SlowBurn:      slow,
			PeakFastBurn:  st.peakFast,
			PeakSlowBurn:  st.peakSlow,
			FastSamples:   fastN,
			SlowSamples:   slowN,
		}
		switch st.o.Kind {
		case KindShare:
			os.MaxDeviation = st.o.MaxDeviation
		default:
			os.Budget = st.o.Budget
		}
		if fast >= st.o.BurnThreshold && slow >= st.o.BurnThreshold && fastN >= float64(st.o.MinSamples) {
			os.Breaching = true
			os.Reason = fmt.Sprintf("%s: fast burn %.2f and slow burn %.2f both >= %.2f over %.0f samples",
				st.o.Name, fast, slow, st.o.BurnThreshold, fastN)
			out.Healthy = false
		}
		out.Objectives = append(out.Objectives, os)
	}
	return out
}

// Healthy evaluates every objective and returns overall health plus
// the breach reasons (empty when healthy) — the /healthz contract.
func (e *Engine) Healthy() (bool, []string) {
	st := e.Status()
	if st.Healthy {
		return true, nil
	}
	var reasons []string
	for _, o := range st.Objectives {
		if o.Breaching {
			reasons = append(reasons, o.Reason)
		}
	}
	sort.Strings(reasons)
	return false, reasons
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
