// Package obs is the dependency-free observability layer: end-to-end
// run tracing, SLO burn-rate accounting, and per-job flight recording.
//
// The three pieces share one design rule: nothing here may perturb the
// simulation. Spans are recorded at coordinator granularity (intake,
// queue wait, run, reallocation epochs, shard step ranges) — never per
// tick — and the per-tick hot path's only obligation is an already-paid
// context lookup at run start. With sampling off the span store sees
// zero traffic and traces stay byte-identical (the tracing-off
// overhead/alloc budget tests pin this, in the style of the telemetry
// layer's TestTelemetryOffOverhead).
//
//   - Tracing (this file): a trace ID is minted at serve job intake and
//     carried via context.Context through experiment, cluster.Run/
//     RunFleet and down to the kernel batch shard ranges. Spans carry
//     both virtual (simulated) and wall timestamps, head sampling is
//     per tenant, and sampled spans land in a bounded in-process store
//     (queryable at /api/trace/{jobID}) and, optionally, a
//     telemetry.TraceEventWriter Perfetto stream.
//   - SLO engine (slo.go): declarative objectives over good/bad event
//     streams with multi-window burn-rate accounting (fast 5m / slow 1h
//     by default) behind an injectable clock, surfaced at /api/slo and
//     /healthz.
//   - Flight recorder (flight.go): an always-on fixed-size ring of
//     recent spans/state/transition/degradation events per job, dumped
//     alongside the result when a job fails, is force-aborted, or trips
//     an SLO breach.
package obs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"aapm/internal/telemetry"
)

// Span is one recorded operation on a trace's timeline. Spans carry
// two clocks: virtual microseconds place the operation on the
// simulated timeline (0 for serve-side spans that exist only in wall
// time), wall fields on the host timeline. Attrs hold the numeric
// payload — power, DPC, budget shares, shard ranges — rich enough for
// postmortems and for feeding learned power models later.
type Span struct {
	Name   string `json:"name"`
	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// VirtUS/VirtDurUS place the span in virtual (simulated) time.
	VirtUS    float64 `json:"virt_us,omitempty"`
	VirtDurUS float64 `json:"virt_dur_us,omitempty"`
	// Start is the wall-clock start; WallDurUS the wall-clock extent.
	Start     time.Time `json:"start"`
	WallDurUS float64   `json:"wall_dur_us,omitempty"`
	// Attrs are numeric span attributes (power_w, dpc, budget_w, …).
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// Config describes a Tracer.
type Config struct {
	// SampleRate is the default head-sampling probability in [0, 1]: the
	// decision is made once, at trace start, from a deterministic hash
	// of the trace ID. 0 disables tracing (IDs are still minted so
	// replies and event streams carry them).
	SampleRate float64
	// TenantRate overrides SampleRate per tenant name ("" is the
	// default tenant).
	TenantRate map[string]float64
	// MaxTraces bounds the in-process span store: beyond it the oldest
	// trace is dropped whole. 0 selects 256.
	MaxTraces int
	// MaxSpansPerTrace bounds each trace's span ring: beyond it the
	// oldest spans are overwritten (the drop count is reported).
	// 0 selects 512.
	MaxSpansPerTrace int
	// Export, when non-nil, tees every sampled span to a Perfetto
	// trace-event stream (one pid per trace).
	Export *telemetry.TraceEventWriter
}

// Tracer mints trace IDs, makes the head-sampling decision, and owns
// the bounded span store. Safe for concurrent use.
type Tracer struct {
	cfg Config
	seq atomic.Uint64

	mu     sync.Mutex
	traces map[string]*traceBuf
	order  []string // insertion order, oldest first (eviction order)
}

// traceBuf is one sampled trace's bounded span ring.
type traceBuf struct {
	spans []Span
	next  int    // ring write cursor once full
	total uint64 // spans ever recorded (total - len = dropped)
	pid   int    // Perfetto pid when exporting
}

// NewTracer builds a tracer. A nil *Tracer is valid and records
// nothing.
func NewTracer(cfg Config) *Tracer {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 256
	}
	if cfg.MaxSpansPerTrace <= 0 {
		cfg.MaxSpansPerTrace = 512
	}
	return &Tracer{cfg: cfg, traces: make(map[string]*traceBuf)}
}

// Start mints a trace for one job submission and decides sampling.
// The returned Trace is non-nil even when unsampled — the ID must
// still reach replies and event streams — but records spans only when
// sampled. flight, when non-nil, receives every span regardless of
// sampling (the flight recorder is always on and bounded per job).
func (t *Tracer) Start(job, tenant string, flight *FlightRecorder) *Trace {
	if t == nil {
		return nil
	}
	n := t.seq.Add(1)
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", job, n)))
	id := "t" + hex.EncodeToString(sum[:8])
	tr := &Trace{ID: id, Job: job, Tenant: tenant, tracer: t, flight: flight}
	rate := t.cfg.SampleRate
	if r, ok := t.cfg.TenantRate[tenant]; ok {
		rate = r
	}
	if !sampleHash(id, rate) {
		return tr
	}
	tr.sampled = true
	buf := &traceBuf{}
	t.mu.Lock()
	if len(t.order) >= t.cfg.MaxTraces {
		oldest := t.order[0]
		t.order = t.order[1:]
		delete(t.traces, oldest)
	}
	t.traces[id] = buf
	t.order = append(t.order, id)
	t.mu.Unlock()
	if tw := t.cfg.Export; tw != nil {
		buf.pid = exportPID(id)
		tw.Emit(telemetry.TraceEvent{
			Name: "process_name", Ph: "M", PID: buf.pid,
			Args: map[string]any{"name": fmt.Sprintf("trace %s job %s tenant %s", id, job, tenantOrDefault(tenant))},
		})
	}
	return tr
}

// Spans returns a sampled trace's recorded spans (oldest first), the
// count of spans dropped by the bounded ring, and whether the trace is
// (still) in the store.
func (t *Tracer) Spans(traceID string) (spans []Span, dropped uint64, ok bool) {
	if t == nil {
		return nil, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, ok := t.traces[traceID]
	if !ok {
		return nil, 0, false
	}
	spans = make([]Span, 0, len(buf.spans))
	if buf.total > uint64(len(buf.spans)) {
		dropped = buf.total - uint64(len(buf.spans))
		spans = append(spans, buf.spans[buf.next:]...)
		spans = append(spans, buf.spans[:buf.next]...)
	} else {
		spans = append(spans, buf.spans...)
	}
	return spans, dropped, true
}

// sampleHash makes the deterministic head-sampling decision: an FNV-1a
// hash of the trace ID mapped to [0, 1) and compared against rate, so
// the same ID samples identically on every replica.
func sampleHash(id string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return float64(h>>11)/(1<<53) < rate
}

// exportPID derives a stable Perfetto pid from the trace ID (pids only
// group tracks in the viewer; collisions merely merge two traces'
// tracks).
func exportPID(id string) int {
	var h uint32
	for i := 0; i < len(id); i++ {
		h = h*31 + uint32(id[i])
	}
	return int(h%1_000_000) + 1000
}

func tenantOrDefault(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// Trace is one job's tracing handle, carried through the stack via
// context. All methods are nil-safe, so call sites need no guards.
type Trace struct {
	ID      string
	Job     string
	Tenant  string
	sampled bool
	tracer  *Tracer
	flight  *FlightRecorder
}

// Sampled reports whether spans recorded on this trace are stored.
// Layers doing per-span work (attr maps, wall snapshots) should guard
// on it; Record itself also checks.
func (tr *Trace) Sampled() bool { return tr != nil && tr.sampled }

// TraceID returns the trace's ID, or "" for a nil trace.
func (tr *Trace) TraceID() string {
	if tr == nil {
		return ""
	}
	return tr.ID
}

// Record stores one span: always into the job's flight recorder (it is
// bounded and per job), and into the span store + Perfetto stream when
// the trace is sampled. Job and Tenant are stamped from the trace when
// unset.
func (tr *Trace) Record(s Span) {
	if tr == nil {
		return
	}
	if s.Job == "" {
		s.Job = tr.Job
	}
	if s.Tenant == "" {
		s.Tenant = tr.Tenant
	}
	tr.flight.Note(FlightEvent{
		Wall:   s.Start,
		Kind:   "span",
		Name:   s.Name,
		VirtUS: s.VirtUS,
		Value:  s.WallDurUS,
	})
	if !tr.sampled {
		return
	}
	t := tr.tracer
	t.mu.Lock()
	buf, ok := t.traces[tr.ID]
	if ok {
		if len(buf.spans) < t.cfg.MaxSpansPerTrace {
			buf.spans = append(buf.spans, s)
		} else {
			buf.spans[buf.next] = s
			buf.next = (buf.next + 1) % len(buf.spans)
		}
		buf.total++
	}
	t.mu.Unlock()
	if !ok {
		return // evicted mid-run: stop exporting too
	}
	if tw := t.cfg.Export; tw != nil {
		tw.Emit(spanEvent(s, buf.pid))
	}
}

// spanEvent renders one span as a Chrome trace event on the virtual
// timeline (serve-side wall-only spans sit at ts 0 with their wall
// extent in args).
func spanEvent(s Span, pid int) telemetry.TraceEvent {
	args := map[string]any{"wall_dur_us": s.WallDurUS}
	for k, v := range s.Attrs {
		args[k] = v
	}
	return telemetry.TraceEvent{
		Name: s.Name, Cat: "span", Ph: "X",
		TS: s.VirtUS, Dur: s.VirtDurUS,
		PID: pid, TID: 1, Args: args,
	}
}

// WritePerfetto renders a trace's stored spans as a Chrome
// trace-event JSON array (the format Perfetto and chrome://tracing
// load), placing spans on the virtual timeline exactly as the live
// Export stream would.
func WritePerfetto(w io.Writer, traceID string, spans []Span) error {
	tw := telemetry.NewTraceEventWriter(w)
	pid := exportPID(traceID)
	name := "trace " + traceID
	if len(spans) > 0 {
		name = fmt.Sprintf("trace %s job %s tenant %s", traceID, spans[0].Job, tenantOrDefault(spans[0].Tenant))
	}
	tw.Emit(telemetry.TraceEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
	for _, s := range spans {
		tw.Emit(spanEvent(s, pid))
	}
	return tw.Close()
}

// ctxKey keys the Trace in a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying tr; spans recorded by lower layers
// (cluster, kernel shard ranges) attach to it via FromContext.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext extracts the Trace carried by ctx, or nil. Allocation-
// free: safe on hot setup paths.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
