package obs

import (
	"sync"
	"time"
)

// FlightEvent is one entry on a job's flight-recorder timeline: a span
// completion, a state transition, a degradation, or any other marker a
// layer wants in the postmortem record.
type FlightEvent struct {
	// Wall is the host-clock timestamp (stamped by Note when zero).
	Wall time.Time `json:"wall"`
	// Kind groups events: "span", "state", "transition", "degradation".
	Kind string `json:"kind"`
	// Name is the event's identity within its kind (span name, state
	// name, fault kind…).
	Name string `json:"name"`
	// Detail is optional free text (error strings, transition detail).
	Detail string `json:"detail,omitempty"`
	// VirtUS places the event on the virtual timeline when it has one.
	VirtUS float64 `json:"virt_us,omitempty"`
	// Value is an optional numeric payload (wall duration µs for spans,
	// power for degradations…).
	Value float64 `json:"value,omitempty"`
}

// FlightRecorder is an always-on fixed-size ring of a single job's
// recent events. It is cheap enough to run unconditionally — one mutex
// and a ring write per event, events arriving at coordinator (not
// tick) granularity — so when a job fails or is aborted the recent
// history is already there, no reproduction needed. Safe for
// concurrent use; a nil *FlightRecorder is valid and records nothing.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []FlightEvent
	cap   int
	next  int
	total uint64
}

// NewFlightRecorder builds a recorder keeping the last capacity events
// (0 selects 128).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 128
	}
	return &FlightRecorder{ring: make([]FlightEvent, 0, capacity), cap: capacity}
}

// Note appends one event, overwriting the oldest once full. Wall is
// stamped with time.Now() when zero.
func (f *FlightRecorder) Note(e FlightEvent) {
	if f == nil {
		return
	}
	if e.Wall.IsZero() {
		e.Wall = time.Now()
	}
	f.mu.Lock()
	if len(f.ring) < f.cap {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.next] = e
		f.next = (f.next + 1) % f.cap
	}
	f.total++
	f.mu.Unlock()
}

// FlightDump is the serialized form stored alongside a failed job's
// result: the retained events oldest-first plus how many older events
// the ring dropped.
type FlightDump struct {
	Capacity int           `json:"capacity"`
	Dropped  uint64        `json:"dropped"`
	Events   []FlightEvent `json:"events"`
}

// Dump snapshots the ring oldest-first. Valid on a nil recorder
// (empty dump).
func (f *FlightRecorder) Dump() FlightDump {
	if f == nil {
		return FlightDump{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d := FlightDump{Capacity: f.cap}
	d.Events = make([]FlightEvent, 0, len(f.ring))
	if f.total > uint64(len(f.ring)) {
		d.Dropped = f.total - uint64(len(f.ring))
		d.Events = append(d.Events, f.ring[f.next:]...)
		d.Events = append(d.Events, f.ring[:f.next]...)
	} else {
		d.Events = append(d.Events, f.ring...)
	}
	return d
}
