// Package power computes the simulated platform's ground-truth
// processor power.
//
// The reproduction cannot measure a real Pentium M, so this package
// plays the role of the silicon: given the active p-state and the
// interval's architectural activity it produces the "true" power the
// sense-resistor chain (package sensor) then measures.
//
// The ground truth is deliberately richer than the paper's estimation
// model (a per-p-state line in DPC): it adds activity terms the
// estimator cannot see — L2 traffic, bus traffic, and clock-gated
// stall cycles. Those hidden terms are what make the estimation
// problem real: they are the in-simulation source of the galgel-style
// underestimates and the per-workload spread of Figure 1.
package power

import (
	"fmt"
	"math"

	"aapm/internal/counters"
	"aapm/internal/paperref"
	"aapm/internal/pstate"
)

// Coefficients are the ground-truth power terms at one p-state.
// Power (watts) for an interval with activity rates DPC, L2PC, MemPC,
// DCU (all per-cycle) is:
//
//	P = AlphaDPC*DPC + Base + GammaL2*L2PC + DeltaMem*MemPC - EpsGate*DCU
//
// Base folds together idle clock tree, leakage at the state's voltage
// and the un-gated pipeline front end. EpsGate models clock gating
// recovering power during data-cache stall cycles.
type Coefficients struct {
	AlphaDPC float64
	Base     float64
	GammaL2  float64
	DeltaMem float64
	EpsGate  float64
}

// Eval returns the power in watts for the given activity rates.
func (c Coefficients) Eval(dpc, l2pc, mempc, dcu float64) float64 {
	p := c.AlphaDPC*dpc + c.Base + c.GammaL2*l2pc + c.DeltaMem*mempc - c.EpsGate*dcu
	if p < 0 {
		p = 0
	}
	return p
}

// GroundTruth maps each p-state of a table to its true coefficients.
type GroundTruth struct {
	table  *pstate.Table
	coeffs []Coefficients
}

// The ground truth uses the paper's published Table II (alpha, beta)
// pairs as its DPC-linear core, so a correctly implemented trainer
// recovers approximately those values when it fits the estimation
// model on the MS-Loops data.

// hidden-term magnitudes at the 2000 MHz reference point, in watts per
// unit per-cycle rate. They scale with V^2*f like dynamic power.
// refEpsGate is kept small relative to refGammaL2: gating correlates
// negatively with decode rate across workloads, so a large value would
// tilt any DPC-linear fit of the training data well away from the
// Table II reference the trainer is expected to recover.
const (
	refGammaL2  = 6.0
	refDeltaMem = 10.0
	refEpsGate  = 0.8
)

// PentiumM755Truth returns the ground truth for the paper's platform.
func PentiumM755Truth() *GroundTruth {
	t := pstate.PentiumM755()
	gt, err := NewGroundTruth(t)
	if err != nil {
		panic("power: built-in ground truth invalid: " + err.Error())
	}
	return gt
}

// NewGroundTruth builds a ground truth for the given table. Every
// state's frequency must appear in the Table II reference data.
func NewGroundTruth(t *pstate.Table) (*GroundTruth, error) {
	ref := t.Max()
	refScale := ref.VoltageV * ref.VoltageV * float64(ref.FreqMHz)
	coeffs := make([]Coefficients, t.Len())
	for i := 0; i < t.Len(); i++ {
		p := t.At(i)
		ab, ok := paperref.TableIIByFreq(p.FreqMHz)
		if !ok {
			return nil, fmt.Errorf("power: no reference coefficients for %d MHz", p.FreqMHz)
		}
		s := p.VoltageV * p.VoltageV * float64(p.FreqMHz) / refScale
		coeffs[i] = Coefficients{
			AlphaDPC: ab.Alpha,
			Base:     ab.Beta,
			GammaL2:  refGammaL2 * s,
			DeltaMem: refDeltaMem * s,
			EpsGate:  refEpsGate * s,
		}
	}
	return &GroundTruth{table: t, coeffs: coeffs}, nil
}

// NewInterpolatedGroundTruth builds a ground truth for a table whose
// states need not match Table II's frequencies or voltages: the
// reference coefficients are interpolated in frequency and the
// voltage-sensitive terms rescaled by (V/Vref)², the CMOS dynamic
// dependence of eq. 1. It backs synthetic sibling platforms (e.g. the
// low-voltage 738) used to demonstrate model platform-specificity.
func NewInterpolatedGroundTruth(t *pstate.Table) (*GroundTruth, error) {
	ref := pstate.PentiumM755().Max()
	refScale := ref.VoltageV * ref.VoltageV * float64(ref.FreqMHz)
	coeffs := make([]Coefficients, t.Len())
	for i := 0; i < t.Len(); i++ {
		p := t.At(i)
		alpha, beta, vref, err := interpTableII(p.FreqMHz)
		if err != nil {
			return nil, err
		}
		vr := p.VoltageV / vref
		s := p.VoltageV * p.VoltageV * float64(p.FreqMHz) / refScale
		coeffs[i] = Coefficients{
			AlphaDPC: alpha * vr * vr,
			Base:     beta * vr * vr,
			GammaL2:  refGammaL2 * s,
			DeltaMem: refDeltaMem * s,
			EpsGate:  refEpsGate * s,
		}
	}
	return &GroundTruth{table: t, coeffs: coeffs}, nil
}

// interpTableII linearly interpolates Table II's alpha, beta and
// voltage at an arbitrary frequency within the reference range.
func interpTableII(freqMHz int) (alpha, beta, voltage float64, err error) {
	rows := paperref.TableII
	if freqMHz < rows[0].FreqMHz || freqMHz > rows[len(rows)-1].FreqMHz {
		return 0, 0, 0, fmt.Errorf("power: frequency %d MHz outside the reference range", freqMHz)
	}
	for i := 1; i < len(rows); i++ {
		lo, hi := rows[i-1], rows[i]
		if freqMHz > hi.FreqMHz {
			continue
		}
		frac := float64(freqMHz-lo.FreqMHz) / float64(hi.FreqMHz-lo.FreqMHz)
		return lo.Alpha + frac*(hi.Alpha-lo.Alpha),
			lo.Beta + frac*(hi.Beta-lo.Beta),
			lo.VoltageV + frac*(hi.VoltageV-lo.VoltageV),
			nil
	}
	last := rows[len(rows)-1]
	return last.Alpha, last.Beta, last.VoltageV, nil
}

// Table returns the p-state table the ground truth covers.
func (g *GroundTruth) Table() *pstate.Table { return g.table }

// Coefficients returns the true coefficients of p-state index i.
func (g *GroundTruth) Coefficients(i int) Coefficients { return g.coeffs[i] }

// Power returns the true average power over an interval with the given
// counter activity, at p-state index i.
func (g *GroundTruth) Power(i int, s counters.Sample) float64 {
	return g.coeffs[i].Eval(s.DPC(), s.L2PC(), s.MemPC(), s.DCU())
}

// PowerFromRates returns the true power given raw activity rates; it is
// the same computation as Power without requiring a counter sample.
func (g *GroundTruth) PowerFromRates(i int, dpc, l2pc, mempc, dcu float64) float64 {
	return g.coeffs[i].Eval(dpc, l2pc, mempc, dcu)
}

// Dynamic returns the textbook CMOS dynamic power alpha*C*V^2*f
// (equation 1 of the paper) for documentation and sanity tests;
// f is in MHz and C in nF so the result is in watts.
func Dynamic(activity, capNF, voltageV float64, freqMHz int) float64 {
	return activity * capNF * 1e-9 * voltageV * voltageV * float64(freqMHz) * 1e6
}

// Energy accumulates joules from a sequence of (power, duration)
// contributions, the way the paper integrates 10 ms power samples.
type Energy struct {
	joules float64
}

// Add accumulates watts over seconds.
func (e *Energy) Add(watts, seconds float64) {
	if seconds < 0 || math.IsNaN(watts) {
		return
	}
	e.joules += watts * seconds
}

// Joules returns the accumulated energy.
func (e *Energy) Joules() float64 { return e.joules }
