package power

import (
	"math"
	"testing"
	"testing/quick"

	"aapm/internal/counters"
	"aapm/internal/pstate"
)

func TestCoefficientsEvalClampsAtZero(t *testing.T) {
	c := Coefficients{AlphaDPC: 1, Base: 0.1, EpsGate: 100}
	if got := c.Eval(0, 0, 0, 1); got != 0 {
		t.Errorf("Eval = %g, want clamped 0", got)
	}
}

func TestGroundTruthMatchesTableIICore(t *testing.T) {
	g := PentiumM755Truth()
	tab := g.Table()
	// With no hidden activity, power is exactly alpha*DPC + beta from
	// the paper's Table II.
	cases := []struct {
		freq        int
		alpha, beta float64
	}{
		{600, 0.34, 2.58},
		{1200, 1.06, 5.60},
		{2000, 2.93, 12.11},
	}
	for _, c := range cases {
		i := tab.IndexOf(c.freq)
		if i < 0 {
			t.Fatalf("no state %d", c.freq)
		}
		got := g.PowerFromRates(i, 1.5, 0, 0, 0)
		want := c.alpha*1.5 + c.beta
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%d MHz: power(dpc=1.5) = %g, want %g", c.freq, got, want)
		}
	}
}

func TestGroundTruthHiddenTermsScaleWithState(t *testing.T) {
	g := PentiumM755Truth()
	lo := g.Coefficients(0)
	hi := g.Coefficients(g.Table().Len() - 1)
	if lo.GammaL2 >= hi.GammaL2 || lo.DeltaMem >= hi.DeltaMem || lo.EpsGate >= hi.EpsGate {
		t.Errorf("hidden terms do not grow with p-state: lo=%+v hi=%+v", lo, hi)
	}
	// At the reference (max) state they equal the reference magnitudes.
	if math.Abs(hi.GammaL2-6.0) > 1e-12 || math.Abs(hi.DeltaMem-10.0) > 1e-12 || math.Abs(hi.EpsGate-0.8) > 1e-12 {
		t.Errorf("reference hidden terms = %+v", hi)
	}
}

func TestGroundTruthPowerMonotoneInPState(t *testing.T) {
	g := PentiumM755Truth()
	prev := -1.0
	for i := 0; i < g.Table().Len(); i++ {
		p := g.PowerFromRates(i, 1.0, 0.05, 0.01, 0.2)
		if p <= prev {
			t.Errorf("power not increasing at index %d: %g <= %g", i, p, prev)
		}
		prev = p
	}
}

func TestPowerFromCounterSample(t *testing.T) {
	g := PentiumM755Truth()
	var s counters.Sample
	s.SetCount(counters.Cycles, 1000)
	s.SetCount(counters.InstDecoded, 1500)
	i := g.Table().Len() - 1
	got := g.Power(i, s)
	want := g.PowerFromRates(i, 1.5, 0, 0, 0)
	if got != want {
		t.Errorf("Power(sample) = %g, want %g", got, want)
	}
}

func TestNewGroundTruthRejectsUnknownFrequency(t *testing.T) {
	tab, err := pstate.NewTable([]pstate.PState{{FreqMHz: 700, VoltageV: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGroundTruth(tab); err == nil {
		t.Error("NewGroundTruth accepted a frequency without reference coefficients")
	}
}

func TestDynamicCMOSFormula(t *testing.T) {
	// P = a*C*V^2*f: 0.5 activity, 1 nF, 1.2 V, 1000 MHz = 0.72 W.
	got := Dynamic(0.5, 1.0, 1.2, 1000)
	if math.Abs(got-0.72) > 1e-12 {
		t.Errorf("Dynamic = %g, want 0.72", got)
	}
}

func TestEnergyAccumulation(t *testing.T) {
	var e Energy
	e.Add(10, 0.5)
	e.Add(20, 0.25)
	if got := e.Joules(); math.Abs(got-10) > 1e-12 {
		t.Errorf("Joules = %g, want 10", got)
	}
	e.Add(5, -1) // ignored
	e.Add(math.NaN(), 1)
	if got := e.Joules(); math.Abs(got-10) > 1e-12 {
		t.Errorf("Joules after invalid adds = %g, want 10", got)
	}
}

// Property: power increases with DPC at every p-state (alpha > 0).
func TestPowerMonotoneInDPC(t *testing.T) {
	g := PentiumM755Truth()
	f := func(idx8 uint8, d1, d2 float64) bool {
		i := int(idx8) % g.Table().Len()
		a, b := math.Abs(d1), math.Abs(d2)
		if math.IsNaN(a) || math.IsNaN(b) || a > 4 || b > 4 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return g.PowerFromRates(i, a, 0, 0, 0) <= g.PowerFromRates(i, b, 0, 0, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpolatedGroundTruth(t *testing.T) {
	// On Table II's own frequencies and voltages, interpolation must
	// reproduce the built-in truth exactly.
	own, err := NewInterpolatedGroundTruth(pstate.PentiumM755())
	if err != nil {
		t.Fatal(err)
	}
	ref := PentiumM755Truth()
	for i := 0; i < ref.Table().Len(); i++ {
		a, b := own.Coefficients(i), ref.Coefficients(i)
		if math.Abs(a.AlphaDPC-b.AlphaDPC) > 1e-12 || math.Abs(a.Base-b.Base) > 1e-12 {
			t.Errorf("state %d: interpolated %+v != reference %+v", i, a, b)
		}
	}
	// The low-voltage sibling draws less at every shared frequency.
	lv, err := NewInterpolatedGroundTruth(pstate.PentiumM738LV())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lv.Table().Len(); i++ {
		f := lv.Table().At(i).FreqMHz
		j := ref.Table().IndexOf(f)
		if lv.PowerFromRates(i, 1.5, 0, 0, 0) >= ref.PowerFromRates(j, 1.5, 0, 0, 0) {
			t.Errorf("%d MHz: low-voltage part not cheaper", f)
		}
	}
	// Frequencies outside the reference range are rejected.
	weird, err := pstate.NewTable([]pstate.PState{{FreqMHz: 2400, VoltageV: 1.4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterpolatedGroundTruth(weird); err == nil {
		t.Error("out-of-range frequency accepted")
	}
}
