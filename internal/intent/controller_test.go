package intent

import (
	"strings"
	"testing"

	"aapm/internal/cluster"
	"aapm/internal/obs"
	"aapm/internal/telemetry"
)

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.Capability.Nodes == 0 {
		cfg.Capability = Capability{Nodes: 8, Levels: 2, Fanout: 4, BudgetW: 128}
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// obsAt builds a synthetic two-group epoch observation.
func obsAt(epoch int, g0W, g1W float64, active int) cluster.FleetEpochObs {
	nodeActive := make([]bool, 8)
	for i := range nodeActive {
		nodeActive[i] = i/4 != 0 || i%4 < active
	}
	return cluster.FleetEpochObs{
		Epoch: epoch, Tick: epoch * 10, VirtUS: float64(epoch) * 1e5,
		BudgetW: 128, FloorW: 4,
		Groups: []cluster.GroupObs{
			{AvgPowerW: g0W, BudgetW: 64, Nodes: 4, Active: active},
			{AvgPowerW: g1W, BudgetW: 64, Nodes: 4, Active: 4},
		},
		NodeActive: nodeActive,
	}
}

func TestSubmitIdempotentAndDelete(t *testing.T) {
	c := newTestController(t, Config{})
	s := Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 40}
	st, created, r := c.Submit(s)
	if r != nil || !created {
		t.Fatalf("first submit: created=%v reason=%v", created, r)
	}
	if st.ID != s.ID() || st.State != StateConverging || st.Phase != PhaseSoft {
		t.Errorf("fresh status %+v", st)
	}
	st2, created2, r2 := c.Submit(s)
	if r2 != nil || created2 {
		t.Fatalf("resubmit: created=%v reason=%v, want idempotent no-op", created2, r2)
	}
	if st2.ID != st.ID {
		t.Errorf("resubmit changed ID: %s vs %s", st2.ID, st.ID)
	}
	if got := len(c.List()); got != 1 {
		t.Fatalf("%d intents after resubmit, want 1", got)
	}
	if !c.Delete(st.ID) {
		t.Fatal("delete failed")
	}
	if c.Delete(st.ID) {
		t.Fatal("second delete succeeded")
	}
	if _, ok := c.Get(st.ID); ok {
		t.Fatal("deleted intent still visible")
	}
	if _, created3, r3 := c.Submit(s); r3 != nil || !created3 {
		t.Fatalf("submit after delete: created=%v reason=%v", created3, r3)
	}
}

func TestSubmitRejectsInfeasible(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := newTestController(t, Config{Telemetry: reg})
	_, _, r := c.Submit(Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 10})
	if r == nil || r.Code != ReasonCapBelowFloor {
		t.Fatalf("infeasible cap: reason %v", r)
	}
	if r.Detail == "" || !strings.Contains(r.Error(), ReasonCapBelowFloor) {
		t.Errorf("reason not self-describing: %+v", r)
	}
	if got := len(c.List()); got != 0 {
		t.Errorf("%d intents admitted after rejection", got)
	}
	if v := reg.Counter("aapm_intent_rejected_total", "Intents rejected at admission, by machine-readable reason.", "reason").With(ReasonCapBelowFloor).Value(); v != 1 {
		t.Errorf("rejected counter = %v, want 1", v)
	}
}

// TestEscalationLadder drives the controller with synthetic
// observations of a group stuck above its cap: the soft directive
// appears immediately, the pin rung fires after the deadline, the
// offline rung after another, and convergence follows once power
// collapses.
func TestEscalationLadder(t *testing.T) {
	reg := telemetry.NewRegistry()
	flight := obs.NewFlightRecorder(64)
	tracer := obs.NewTracer(obs.Config{SampleRate: 1})
	tr := tracer.Start("intents", "", flight)
	c := newTestController(t, Config{
		ConvergeEpochs: 2, DeadlineEpochs: 2,
		Trace: tr, Flight: flight, Telemetry: reg,
	})
	s := Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 40}
	if _, _, r := c.Submit(s); r != nil {
		t.Fatal(r)
	}

	// Epoch 1: stuck at 57 W — soft cap directive, no escalation yet.
	d := c.Epoch(obsAt(1, 57, 55, 4))
	if got := d.Groups[1][0].CapW; got != 40 {
		t.Fatalf("soft cap directive = %v, want 40", got)
	}
	for i, ov := range d.Nodes {
		if ov != cluster.NodeAuto {
			t.Fatalf("node %d overridden before deadline: %v", i, ov)
		}
	}

	// Epoch 2: deadline (2 epochs in soft) lapses — pin rung.
	d = c.Epoch(obsAt(2, 57, 55, 4))
	for i := 0; i < 4; i++ {
		if d.Nodes[i] != cluster.NodePinned {
			t.Fatalf("node %d = %v after pin escalation", i, d.Nodes[i])
		}
	}
	for i := 4; i < 8; i++ {
		if d.Nodes[i] != cluster.NodeAuto {
			t.Fatalf("sibling node %d overridden: %v", i, d.Nodes[i])
		}
	}
	st, _ := c.Get(s.ID())
	if st.Phase != PhasePin || st.Escalations != 1 {
		t.Fatalf("after pin: %+v", st)
	}

	// Epochs 3-4: pin does not help either — offline rung.
	c.Epoch(obsAt(3, 57, 55, 4))
	d = c.Epoch(obsAt(4, 57, 55, 4))
	for i := 0; i < 4; i++ {
		if d.Nodes[i] != cluster.NodeOffline {
			t.Fatalf("node %d = %v after offline escalation", i, d.Nodes[i])
		}
	}
	st, _ = c.Get(s.ID())
	if st.Phase != PhaseOffline || st.Escalations != 2 {
		t.Fatalf("after offline: %+v", st)
	}

	// Epochs 5-6: the group is gone; two quiet epochs converge it.
	c.Epoch(obsAt(5, 0, 55, 0))
	c.Epoch(obsAt(6, 0, 55, 0))
	st, _ = c.Get(s.ID())
	if st.State != StateConverged || st.Phase != PhaseOffline {
		t.Fatalf("final status %+v", st)
	}
	if st.ObservedW != 0 || st.ObservedActive != 0 {
		t.Errorf("observed %+v after offline", st)
	}

	// Every transition is on the record: events, spans, flight,
	// telemetry.
	events := strings.Join(c.Events(), "\n")
	for _, want := range []string{"admit", "escalate", "to=pin", "to=offline", "converge"} {
		if !strings.Contains(events, want) {
			t.Errorf("events missing %q:\n%s", want, events)
		}
	}
	spans, _, ok := tracer.Spans(tr.ID)
	if !ok {
		t.Fatal("trace not sampled")
	}
	var names []string
	for _, sp := range spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"intent-admit", "intent-escalate", "intent-converge"} {
		if !strings.Contains(joined, want) {
			t.Errorf("spans missing %q: %v", want, names)
		}
	}
	if n := len(flight.Dump().Events); n == 0 {
		t.Error("flight recorder empty")
	}
	esc := reg.Counter("aapm_intent_escalations_total", "Escalation-ladder transitions, by intent kind and target phase.", "kind", "phase")
	if v := esc.With(string(KindCap), string(PhasePin)).Value(); v != 1 {
		t.Errorf("pin escalation counter = %v", v)
	}
	if v := esc.With(string(KindCap), string(PhaseOffline)).Value(); v != 1 {
		t.Errorf("offline escalation counter = %v", v)
	}
}

// TestDirectiveRendering covers the non-cap kinds: floors become MinW
// raises, prefers weight scaling, drains cap the covered groups at
// their guaranteed minima and escalate straight to offline.
func TestDirectiveRendering(t *testing.T) {
	c := newTestController(t, Config{ConvergeEpochs: 2, DeadlineEpochs: 3})
	for _, s := range []Spec{
		{Kind: KindFloor, Level: 1, Group: 1, Watts: 50},
		{Kind: KindPrefer, Level: 1, Group: 1, Weight: 2},
		{Kind: KindDrain, Level: 1, Group: 0},
	} {
		if _, _, r := c.Submit(s); r != nil {
			t.Fatalf("%+v rejected: %v", s, r)
		}
	}
	d := c.Epoch(obsAt(1, 20, 55, 4))
	if got := d.Groups[1][1].MinW; got != 50 {
		t.Errorf("floor MinW = %v, want 50", got)
	}
	if got := d.Groups[1][1].Weight; got != 2 {
		t.Errorf("prefer Weight = %v, want 2", got)
	}
	// Drained group 0 is capped at its guaranteed minimum (4 x 4 W).
	if got := d.Groups[1][0].CapW; got != 16 {
		t.Errorf("drain soft CapW = %v, want 16", got)
	}

	// A drained group that never quiesces goes offline at the deadline.
	for e := 2; e <= 4; e++ {
		d = c.Epoch(obsAt(e, 20, 55, 4))
	}
	for i := 0; i < 4; i++ {
		if d.Nodes[i] != cluster.NodeOffline {
			t.Fatalf("node %d = %v after drain deadline", i, d.Nodes[i])
		}
	}

	// Floor convergence is budget-based: group 1's 64 W grant covers
	// the 50 W floor, so it converges without escalation.
	st, _ := c.Get(Spec{Kind: KindFloor, Level: 1, Group: 1, Watts: 50}.ID())
	if st.State != StateConverged || st.Escalations != 0 {
		t.Errorf("floor status %+v", st)
	}
	// Prefer converges trivially.
	st, _ = c.Get(Spec{Kind: KindPrefer, Level: 1, Group: 1, Weight: 2}.ID())
	if st.State != StateConverged {
		t.Errorf("prefer status %+v", st)
	}
}

// TestSingleNodeDrain pins the level-0 drain path: the override hits
// exactly one leaf and convergence reads the node-active bit.
func TestSingleNodeDrain(t *testing.T) {
	c := newTestController(t, Config{ConvergeEpochs: 2, DeadlineEpochs: 1})
	s := Spec{Kind: KindDrain, Level: 0, Group: 2}
	if _, _, r := c.Submit(s); r != nil {
		t.Fatal(r)
	}
	// Node 2 still active past the deadline: offline override fires.
	c.Epoch(obsAt(1, 57, 55, 4))
	d := c.Epoch(obsAt(2, 57, 55, 4))
	for i, ov := range d.Nodes {
		want := cluster.NodeAuto
		if i == 2 {
			want = cluster.NodeOffline
		}
		if ov != want {
			t.Fatalf("node %d override = %v, want %v", i, ov, want)
		}
	}
	// Two epochs with the node inactive converge the drain: obsAt
	// marks group-0 leaves [active..4) inactive, so active=2 covers
	// node 2.
	c.Epoch(obsAt(3, 30, 55, 2))
	c.Epoch(obsAt(4, 30, 55, 2))
	st, _ := c.Get(s.ID())
	if st.State != StateConverged || st.ObservedActive != 0 {
		t.Fatalf("drain status %+v", st)
	}
}
