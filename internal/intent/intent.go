// Package intent is the declarative fleet-orchestration layer above
// the hierarchical allocator: clients declare what the fleet should
// look like — power caps on node groups, drains, minimum-performance
// floors, priority weights — and a controller reconciles the admitted
// intent set against a running cluster.RunFleet through the
// control-plane seam (cluster.FleetControl), observing convergence
// from epoch telemetry.
//
// The design follows the Device Management Resource Manager shape:
// intents are admitted against the fleet's aggregate capability and
// infeasible ones are rejected with a machine-readable reason;
// enforcement is ordered, soft commands first (governor/water-fill
// retuning), hard commands (forced p-state pins, node offlining) only
// after a configurable non-convergence deadline, with every
// transition recorded as an obs span and flight-recorder event.
package intent

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"aapm/internal/cluster"
)

// Kind names an intent's verb.
type Kind string

const (
	// KindCap bounds a group's epoch-average power.
	KindCap Kind = "cap"
	// KindDrain removes a node (level 0) or group (level >= 1) from
	// service: its work coasts down and its share is released.
	KindDrain Kind = "drain"
	// KindFloor guarantees a group a minimum budget share.
	KindFloor Kind = "floor"
	// KindPrefer scales a group's claim on contended headroom.
	KindPrefer Kind = "prefer"
)

// Spec is one client-declared intent, the POST /api/intents body.
// Specs are content-addressed: the ID is a hash of the canonical
// field encoding, so resubmitting an identical spec is idempotent.
type Spec struct {
	Kind Kind `json:"kind"`
	// Level addresses the target in the allocation tree: 0 is a
	// single leaf (drains only), 1..levels-1 an interior group.
	Level int `json:"level"`
	// Group is the group (or node, at level 0) index at that level.
	Group int `json:"group"`
	// Watts is the cap or floor target; unused for drain/prefer.
	Watts float64 `json:"watts,omitempty"`
	// Weight is the prefer priority: >1 bids harder for contended
	// headroom, <1 yields it. Unused for other kinds.
	Weight float64 `json:"weight,omitempty"`
	// DeadlineEpochs overrides the controller's escalation deadline
	// for this intent (0 = controller default).
	DeadlineEpochs int `json:"deadline_epochs,omitempty"`
}

// ID is the content-addressed intent identity: "n" plus the first 16
// hex digits of the canonical encoding's SHA-256.
func (s Spec) ID() string {
	sum := sha256.Sum256(s.canonical())
	return "n" + hex.EncodeToString(sum[:8])
}

// canonical is the byte encoding the ID hashes: fixed field order,
// fixed float formatting, no dependence on JSON key ordering.
func (s Spec) canonical() []byte {
	return fmt.Appendf(nil, "intent|%s|%d|%d|%g|%g|%d",
		s.Kind, s.Level, s.Group, s.Watts, s.Weight, s.DeadlineEpochs)
}

// Reason is a machine-readable rejection: Code is stable and
// comparable, Detail names the offending constraint.
type Reason struct {
	Code   string `json:"code"`
	Detail string `json:"detail"`
}

func (r *Reason) Error() string { return r.Code + ": " + r.Detail }

func reasonf(code, format string, args ...any) *Reason {
	return &Reason{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// Rejection reason codes.
const (
	// ReasonBadSpec covers malformed specs: unknown kind, level or
	// group out of range, non-positive watts/weight.
	ReasonBadSpec = "bad-spec"
	// ReasonCapBelowFloor rejects a cap below the target subtree's
	// guaranteed minimum (sum of node floors, group minima and floor
	// intents).
	ReasonCapBelowFloor = "cap-below-floor"
	// ReasonFloorExceedsCap rejects a floor that cannot fit under a
	// cap on the group or an ancestor, or past the subtree's
	// achievable power.
	ReasonFloorExceedsCap = "floor-exceeds-cap"
	// ReasonFloorsExceedBudget rejects a floor whose admission would
	// push the fleet's total guaranteed minima past the root budget.
	ReasonFloorsExceedBudget = "floors-exceed-budget"
	// ReasonDrainStrandsFloor rejects a drain that would leave an
	// admitted floor (or other guarantee) unsatisfiable.
	ReasonDrainStrandsFloor = "drain-strands-floor"
	// ReasonDrainNoCapacity rejects a drain that would leave the
	// fleet with no serving capacity at all.
	ReasonDrainNoCapacity = "drain-no-capacity"
)

// Phase is the escalation rung enforcement currently sits on,
// PowerCommandPolicy-ordered: soft first, hard only after the
// non-convergence deadline.
type Phase string

const (
	// PhaseSoft retunes governor specs through the water-fill: group
	// caps, floors and weights.
	PhaseSoft Phase = "soft"
	// PhasePin force-pins the subtree's nodes to the bottom p-state
	// (hard cap enforcement).
	PhasePin Phase = "pin"
	// PhaseOffline forces the subtree's nodes out of service (final
	// rung for caps, hard rung for drains).
	PhaseOffline Phase = "offline"
)

// State is the reconcile state reported on /api/intents/{id}/status.
type State string

const (
	// StateConverging means the intent is admitted and enforced but
	// the fleet has not yet been observed satisfying it for
	// ConvergeEpochs consecutive epochs.
	StateConverging State = "converging"
	// StateConverged means the convergence predicate has held for
	// ConvergeEpochs consecutive epochs (and still holds).
	StateConverged State = "converged"
)

// Status is an intent's externally visible reconcile state.
type Status struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	Phase Phase  `json:"phase"`
	// Epochs counts reconcile epochs observed since admission;
	// OKEpochs the current consecutive run satisfying the predicate.
	Epochs   int `json:"epochs"`
	OKEpochs int `json:"ok_epochs"`
	// ConvergedEpochs is how many epochs admission→first convergence
	// took (0 until converged once).
	ConvergedEpochs int `json:"converged_epochs,omitempty"`
	// Escalations counts phase transitions taken so far.
	Escalations int `json:"escalations"`
	// ObservedW is the target subtree's last epoch-average power;
	// ObservedActive its in-service leaf count; TargetW echoes the
	// cap/floor target.
	ObservedW      float64 `json:"observed_w"`
	ObservedActive int     `json:"observed_active"`
	TargetW        float64 `json:"target_w,omitempty"`
}

// validate checks spec shape against the fleet tree (feasibility is
// admission's job).
func (s Spec) validate(shape cluster.TreeShape) *Reason {
	switch s.Kind {
	case KindCap, KindFloor:
		if !(s.Watts > 0) || math.IsInf(s.Watts, 0) {
			return reasonf(ReasonBadSpec, "%s needs watts > 0 (got %g)", s.Kind, s.Watts)
		}
		if s.Level < 1 || s.Level >= shape.Levels() {
			return reasonf(ReasonBadSpec, "%s level %d outside interior levels [1, %d]", s.Kind, s.Level, shape.Levels()-1)
		}
	case KindPrefer:
		if !(s.Weight > 0) || s.Weight > 64 {
			return reasonf(ReasonBadSpec, "prefer needs weight in (0, 64] (got %g)", s.Weight)
		}
		if s.Level < 1 || s.Level >= shape.Levels() {
			return reasonf(ReasonBadSpec, "prefer level %d outside interior levels [1, %d]", s.Level, shape.Levels()-1)
		}
	case KindDrain:
		if s.Level < 0 || s.Level >= shape.Levels() {
			return reasonf(ReasonBadSpec, "drain level %d outside [0, %d]", s.Level, shape.Levels()-1)
		}
	default:
		return reasonf(ReasonBadSpec, "unknown kind %q", s.Kind)
	}
	if s.Group < 0 || s.Group >= shape.Groups(s.Level) {
		return reasonf(ReasonBadSpec, "level %d has %d groups, group %d out of range", s.Level, shape.Groups(s.Level), s.Group)
	}
	if s.DeadlineEpochs < 0 {
		return reasonf(ReasonBadSpec, "negative deadline_epochs %d", s.DeadlineEpochs)
	}
	return nil
}
