package intent

import (
	"strings"
	"testing"
)

// cap16 is the admission fixture: 16 nodes, 3 levels, fanout 4 →
// four level-1 groups of 4 nodes under one level-2 group. Node floor
// 4 W, ceiling 25 W, root budget 256 W.
func cap16() Capability {
	return Capability{Nodes: 16, Levels: 3, Fanout: 4, BudgetW: 256}.withDefaults()
}

func TestSpecIDContentAddressed(t *testing.T) {
	a := Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 40}
	b := Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 40}
	if a.ID() != b.ID() {
		t.Errorf("identical specs hash differently: %s vs %s", a.ID(), b.ID())
	}
	for _, other := range []Spec{
		{Kind: KindCap, Level: 1, Group: 1, Watts: 40},
		{Kind: KindCap, Level: 1, Group: 0, Watts: 41},
		{Kind: KindFloor, Level: 1, Group: 0, Watts: 40},
		{Kind: KindCap, Level: 2, Group: 0, Watts: 40},
		{Kind: KindCap, Level: 1, Group: 0, Watts: 40, DeadlineEpochs: 3},
	} {
		if other.ID() == a.ID() {
			t.Errorf("distinct spec %+v collides with %+v", other, a)
		}
	}
	if !strings.HasPrefix(a.ID(), "n") || len(a.ID()) != 17 {
		t.Errorf("ID format %q, want n + 16 hex digits", a.ID())
	}
}

func TestSpecValidation(t *testing.T) {
	shape := cap16().shape()
	cases := []struct {
		name string
		s    Spec
	}{
		{"unknown kind", Spec{Kind: "boost", Level: 1, Group: 0, Watts: 10}},
		{"cap without watts", Spec{Kind: KindCap, Level: 1, Group: 0}},
		{"cap with NaN-ish watts", Spec{Kind: KindCap, Level: 1, Group: 0, Watts: -5}},
		{"cap at leaf level", Spec{Kind: KindCap, Level: 0, Group: 0, Watts: 10}},
		{"cap above root", Spec{Kind: KindCap, Level: 3, Group: 0, Watts: 10}},
		{"group out of range", Spec{Kind: KindCap, Level: 1, Group: 4, Watts: 10}},
		{"negative group", Spec{Kind: KindDrain, Level: 1, Group: -1}},
		{"prefer without weight", Spec{Kind: KindPrefer, Level: 1, Group: 0}},
		{"prefer weight too large", Spec{Kind: KindPrefer, Level: 1, Group: 0, Weight: 100}},
		{"drain level out of range", Spec{Kind: KindDrain, Level: 5, Group: 0}},
		{"negative deadline", Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 10, DeadlineEpochs: -1}},
	}
	for _, tc := range cases {
		r := tc.s.validate(shape)
		if r == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if r.Code != ReasonBadSpec {
			t.Errorf("%s: code %s, want %s", tc.name, r.Code, ReasonBadSpec)
		}
	}
	good := []Spec{
		{Kind: KindCap, Level: 1, Group: 3, Watts: 40},
		{Kind: KindFloor, Level: 2, Group: 0, Watts: 100},
		{Kind: KindPrefer, Level: 1, Group: 0, Weight: 2},
		{Kind: KindDrain, Level: 0, Group: 15},
		{Kind: KindDrain, Level: 1, Group: 2},
	}
	for _, s := range good {
		if r := s.validate(shape); r != nil {
			t.Errorf("valid spec %+v rejected: %v", s, r)
		}
	}
}

// TestAdmissionFeasibility walks the feasibility sweep through the
// edge cases: nested cap conflicts, drains stranding floors, budget
// exhaustion, and the positive paths between them.
func TestAdmissionFeasibility(t *testing.T) {
	c := cap16()
	shape := c.shape()
	check := func(t *testing.T, admitted []Spec, cand Spec, wantCode string) {
		t.Helper()
		r := admit(c, shape, admitted, cand)
		switch {
		case wantCode == "" && r != nil:
			t.Errorf("want admitted, got %v", r)
		case wantCode != "" && r == nil:
			t.Errorf("want rejection %s, got admitted", wantCode)
		case wantCode != "" && r.Code != wantCode:
			t.Errorf("want rejection %s, got %s (%s)", wantCode, r.Code, r.Detail)
		}
	}

	t.Run("cap below the group floor", func(t *testing.T) {
		// Group minimum is 4 leaves x 4 W = 16 W.
		check(t, nil, Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 10}, ReasonCapBelowFloor)
		check(t, nil, Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 16}, "")
	})

	t.Run("nested caps conflict", func(t *testing.T) {
		// An inner cap is fine under an outer one, but an outer cap
		// below the level's summed floors (4 groups x 16 W) is not.
		inner := Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 30}
		outer := Spec{Kind: KindCap, Level: 2, Group: 0, Watts: 100}
		check(t, []Spec{outer}, inner, "")
		check(t, []Spec{inner}, Spec{Kind: KindCap, Level: 2, Group: 0, Watts: 50}, ReasonCapBelowFloor)
	})

	t.Run("floor cannot fit under an ancestor cap", func(t *testing.T) {
		// Outer cap 100 W; three sibling minima of 16 W leave at most
		// 52 W of guaranteed room for a floor on group 1.
		outer := Spec{Kind: KindCap, Level: 2, Group: 0, Watts: 100}
		check(t, []Spec{outer}, Spec{Kind: KindFloor, Level: 1, Group: 1, Watts: 80}, ReasonFloorExceedsCap)
		check(t, []Spec{outer}, Spec{Kind: KindFloor, Level: 1, Group: 1, Watts: 50}, "")
		// Or past the subtree's achievable power (4 x 25 W).
		check(t, nil, Spec{Kind: KindFloor, Level: 1, Group: 1, Watts: 120}, ReasonFloorExceedsCap)
	})

	t.Run("floors exceed the root budget", func(t *testing.T) {
		f0 := Spec{Kind: KindFloor, Level: 1, Group: 0, Watts: 95}
		check(t, []Spec{f0}, Spec{Kind: KindFloor, Level: 1, Group: 1, Watts: 95}, "")
		// 95 + 95 + 95 + 16 = 301 > 256.
		f1 := Spec{Kind: KindFloor, Level: 1, Group: 1, Watts: 95}
		check(t, []Spec{f0, f1}, Spec{Kind: KindFloor, Level: 1, Group: 2, Watts: 95}, ReasonFloorsExceedBudget)
	})

	t.Run("drain strands a floor", func(t *testing.T) {
		floor := Spec{Kind: KindFloor, Level: 1, Group: 0, Watts: 40}
		check(t, []Spec{floor}, Spec{Kind: KindDrain, Level: 1, Group: 0}, ReasonDrainStrandsFloor)
		// Draining one leaf of the floored group leaves 3 x 25 W of
		// achievable power, plenty for the 40 W floor.
		check(t, []Spec{floor}, Spec{Kind: KindDrain, Level: 0, Group: 0}, "")
		// Draining an unfloored sibling is fine too.
		check(t, []Spec{floor}, Spec{Kind: KindDrain, Level: 1, Group: 2}, "")
	})

	t.Run("drain leaves no capacity", func(t *testing.T) {
		check(t, nil, Spec{Kind: KindDrain, Level: 2, Group: 0}, ReasonDrainNoCapacity)
		d0 := Spec{Kind: KindDrain, Level: 1, Group: 0}
		d1 := Spec{Kind: KindDrain, Level: 1, Group: 1}
		d2 := Spec{Kind: KindDrain, Level: 1, Group: 2}
		check(t, []Spec{d0, d1}, d2, "")
		check(t, []Spec{d0, d1, d2}, Spec{Kind: KindDrain, Level: 1, Group: 3}, ReasonDrainNoCapacity)
	})

	t.Run("static group minima participate", func(t *testing.T) {
		cg := c
		cg.GroupMinW = []float64{60, 0, 0, 0}
		// A cap on group 0 below its static 60 W minimum is rejected
		// even though the leaf floors alone would allow it.
		check2 := func(cand Spec, want string) {
			t.Helper()
			r := admit(cg, shape, nil, cand)
			if want == "" && r != nil {
				t.Errorf("want admitted, got %v", r)
			} else if want != "" && (r == nil || r.Code != want) {
				t.Errorf("want %s, got %v", want, r)
			}
		}
		check2(Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 50}, ReasonCapBelowFloor)
		check2(Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 60}, "")
	})
}
