package intent

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"aapm/internal/cluster"
	"aapm/internal/faults"
	"aapm/internal/obs"
	"aapm/internal/sensor"
)

// demoFleet is the closed-loop fixture: 16 nodes, two levels, four
// groups of four, reallocating every 10 ticks. Unconstrained groups
// draw ~55-57 W, so a 40 W cap binds without being unreachable.
func demoFleet() cluster.FleetConfig {
	return cluster.FleetConfig{
		BudgetW:    16 * 16,
		Nodes:      cluster.SyntheticFleet(16, 200),
		Seed:       7,
		Chain:      sensor.NIDefault(),
		Levels:     2,
		Fanout:     4,
		EpochTicks: 10,
	}
}

// TestClosedLoopCapConverges is the demo acceptance: a cap intent on
// one group of a live two-level fleet converges in the soft phase —
// the epoch-average group power drops under the cap within the run —
// and an infeasible intent is rejected with a structured reason.
func TestClosedLoopCapConverges(t *testing.T) {
	cfg := demoFleet()
	ctl, err := New(Config{Capability: CapabilityOf(cfg), ConvergeEpochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 40}
	st, created, r := ctl.Submit(spec)
	if r != nil || !created {
		t.Fatalf("submit: created=%v reason=%v", created, r)
	}
	if st.State != StateConverging {
		t.Fatalf("pre-run state %v", st.State)
	}

	// Infeasible intents bounce at admission with machine-readable
	// reasons while the feasible one stands.
	if _, _, r := ctl.Submit(Spec{Kind: KindFloor, Level: 1, Group: 1, Watts: 250}); r == nil || r.Code != ReasonFloorExceedsCap {
		t.Fatalf("infeasible floor: reason %v", r)
	}
	if _, _, r := ctl.Submit(Spec{Kind: KindCap, Level: 1, Group: 1, Watts: 10}); r == nil || r.Code != ReasonCapBelowFloor {
		t.Fatalf("infeasible cap: reason %v", r)
	}

	cfg.Control = ctl
	res, err := cluster.RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs < 6 {
		t.Fatalf("only %d epochs, cap cannot converge", res.Epochs)
	}
	st, ok := ctl.Get(spec.ID())
	if !ok {
		t.Fatal("intent vanished")
	}
	if st.State != StateConverged {
		t.Fatalf("cap did not converge: %+v\nevents:\n%s", st, strings.Join(ctl.Events(), "\n"))
	}
	if st.Phase != PhaseSoft || st.Escalations != 0 {
		t.Errorf("cap needed escalation: %+v", st)
	}
	if st.ObservedW > spec.Watts+1e-9 {
		t.Errorf("converged at %.2f W over the %.0f W cap", st.ObservedW, spec.Watts)
	}
	if st.ConvergedEpochs == 0 || st.ConvergedEpochs > res.Epochs {
		t.Errorf("ConvergedEpochs = %d of %d", st.ConvergedEpochs, res.Epochs)
	}
}

// TestClosedLoopDeterministic pins the control loop into the fleet's
// determinism contract: identical intent sets produce byte-identical
// traces, energies and reconcile histories at any worker count.
func TestClosedLoopDeterministic(t *testing.T) {
	run := func(workers int) ([]byte, []string, []float64) {
		cfg := demoFleet()
		cfg.Workers = workers
		cfg.RetainTraces = true
		ctl, err := New(Config{Capability: CapabilityOf(cfg), ConvergeEpochs: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Spec{
			{Kind: KindCap, Level: 1, Group: 0, Watts: 40},
			{Kind: KindFloor, Level: 1, Group: 2, Watts: 70},
			{Kind: KindPrefer, Level: 1, Group: 3, Weight: 2},
			{Kind: KindDrain, Level: 0, Group: 5},
		} {
			if _, _, r := ctl.Submit(s); r != nil {
				t.Fatalf("%+v rejected: %v", s, r)
			}
		}
		cfg.Control = ctl
		res, err := cluster.RunFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		energies := make([]float64, 0, len(res.Runs))
		for i, r := range res.Runs {
			fmt.Fprintf(&buf, "# node %d %s\n", i, res.Names[i])
			if err := r.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			energies = append(energies, r.EnergyJ)
		}
		return buf.Bytes(), ctl.Events(), energies
	}
	refCSV, refEvents, refEnergy := run(1)
	for _, workers := range []int{4, 7} {
		csv, events, energy := run(workers)
		if !bytes.Equal(refCSV, csv) {
			t.Errorf("workers=%d: traces diverge from serial", workers)
		}
		if strings.Join(events, "\n") != strings.Join(refEvents, "\n") {
			t.Errorf("workers=%d: reconcile histories diverge:\n%s\nvs\n%s",
				workers, strings.Join(events, "\n"), strings.Join(refEvents, "\n"))
		}
		for i := range refEnergy {
			if energy[i] != refEnergy[i] {
				t.Errorf("workers=%d: node %d energy %v != %v", workers, i, energy[i], refEnergy[i])
			}
		}
	}
}

// TestClosedLoopEscalatesUnderActuatorFailure injects total actuator
// failure into one group: its nodes can never leave the top p-state,
// so the soft cap and the pin rung both fail and the controller walks
// the full ladder to offline — at which point the group draws nothing
// and the cap converges. The whole descent is visible as obs spans.
func TestClosedLoopEscalatesUnderActuatorFailure(t *testing.T) {
	cfg := demoFleet()
	cfg.Faults = func(i int) *faults.Plan {
		if i < 4 {
			return &faults.Plan{Actuator: faults.ActuatorPlan{FailProb: 1}, Seed: int64(i + 1)}
		}
		return nil
	}
	flight := obs.NewFlightRecorder(128)
	tracer := obs.NewTracer(obs.Config{SampleRate: 1})
	tr := tracer.Start("fleet-intents", "", flight)
	ctl, err := New(Config{
		Capability:     CapabilityOf(cfg),
		ConvergeEpochs: 2,
		DeadlineEpochs: 3,
		Trace:          tr,
		Flight:         flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Kind: KindCap, Level: 1, Group: 0, Watts: 40, DeadlineEpochs: 3}
	if _, _, r := ctl.Submit(spec); r != nil {
		t.Fatal(r)
	}
	cfg.Control = ctl
	if _, err := cluster.RunFleet(cfg); err != nil {
		t.Fatal(err)
	}
	st, _ := ctl.Get(spec.ID())
	if st.Phase != PhaseOffline || st.Escalations != 2 {
		t.Fatalf("ladder did not complete: %+v\nevents:\n%s", st, strings.Join(ctl.Events(), "\n"))
	}
	if st.State != StateConverged {
		t.Fatalf("cap never converged after offlining: %+v", st)
	}
	if st.ObservedW != 0 || st.ObservedActive != 0 {
		t.Errorf("offlined group still observed: %+v", st)
	}
	events := strings.Join(ctl.Events(), "\n")
	for _, want := range []string{"to=pin", "to=offline", "converge"} {
		if !strings.Contains(events, want) {
			t.Errorf("events missing %q:\n%s", want, events)
		}
	}
	spans, _, ok := tracer.Spans(tr.ID)
	if !ok {
		t.Fatal("trace not sampled")
	}
	escalations := 0
	for _, sp := range spans {
		if sp.Name == "intent-escalate" {
			escalations++
		}
	}
	if escalations != 2 {
		t.Errorf("%d intent-escalate spans, want 2", escalations)
	}
}
