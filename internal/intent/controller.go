package intent

import (
	"fmt"
	"sync"

	"aapm/internal/cluster"
	"aapm/internal/obs"
	"aapm/internal/telemetry"
)

// Config describes a Controller.
type Config struct {
	// Capability is the fleet the intents are admitted against.
	Capability Capability
	// ConvergeEpochs is how many consecutive satisfied epochs declare
	// an intent converged (0 → 2).
	ConvergeEpochs int
	// DeadlineEpochs is the default escalation deadline: epochs a
	// phase may stay unconverged before the next rung fires (0 → 8).
	DeadlineEpochs int
	// Trace, when non-nil, receives one span per admission, rejection,
	// escalation and convergence transition.
	Trace *obs.Trace
	// Flight, when non-nil, receives the same transitions as
	// flight-recorder events.
	Flight *obs.FlightRecorder
	// Telemetry, when non-nil, receives the intent metric families.
	Telemetry *telemetry.Registry
}

// Controller owns the admitted intent set and reconciles it against a
// running fleet: it implements cluster.FleetControl, translating
// intents into per-group directives and per-node overrides each epoch
// and reading convergence back from the epoch observations. Submit,
// Delete, Get and List are safe to call concurrently with Epoch; the
// reconcile decisions themselves are a deterministic function of the
// submission order and the observation sequence.
type Controller struct {
	cfg   Config
	shape cluster.TreeShape
	tel   *intentTelemetry

	mu    sync.Mutex
	recs  map[string]*record
	order []*record
	epoch int
	// nodeOv is the directive scratch reused across epochs.
	nodeOv []cluster.NodeOverride
	log    []string
}

// record is one admitted intent's reconcile state.
type record struct {
	spec Spec
	id   string

	state       State
	phase       Phase
	admitted    int // controller epoch at admission
	okRun       int // consecutive epochs satisfying the predicate
	failRun     int // consecutive epochs failing it, this phase
	convergedIn int // epochs admission→first convergence (0 = never yet)
	escalations int
	deadline    int

	observedW      float64
	observedActive int
}

// New builds a controller for the given fleet capability.
func New(cfg Config) (*Controller, error) {
	cfg.Capability = cfg.Capability.withDefaults()
	if cfg.Capability.Nodes <= 0 {
		return nil, fmt.Errorf("intent: capability has no nodes")
	}
	if cfg.Capability.BudgetW <= 0 {
		return nil, fmt.Errorf("intent: capability has no budget")
	}
	if cfg.ConvergeEpochs <= 0 {
		cfg.ConvergeEpochs = 2
	}
	if cfg.DeadlineEpochs <= 0 {
		cfg.DeadlineEpochs = 8
	}
	c := &Controller{
		cfg:    cfg,
		shape:  cfg.Capability.shape(),
		recs:   make(map[string]*record),
		nodeOv: make([]cluster.NodeOverride, cfg.Capability.Nodes),
	}
	c.tel = newIntentTelemetry(cfg.Telemetry)
	return c, nil
}

// Submit admits (or idempotently returns) an intent. created reports
// whether this call added it; a non-nil Reason means it was rejected
// and the other returns are zero.
func (c *Controller) Submit(s Spec) (Status, bool, *Reason) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := s.ID()
	if rec, ok := c.recs[id]; ok {
		return c.statusLocked(rec), false, nil
	}
	admitted := make([]Spec, 0, len(c.order))
	for _, rec := range c.order {
		admitted = append(admitted, rec.spec)
	}
	if r := admit(c.cfg.Capability, c.shape, admitted, s); r != nil {
		c.tel.rejected(r.Code)
		c.note("reject", id, fmt.Sprintf("%s %s: %s", s.Kind, groupName(s), r.Code), 0)
		return Status{}, false, r
	}
	rec := &record{
		spec:     s,
		id:       id,
		state:    StateConverging,
		phase:    PhaseSoft,
		admitted: c.epoch,
		deadline: s.DeadlineEpochs,
	}
	if rec.deadline <= 0 {
		rec.deadline = c.cfg.DeadlineEpochs
	}
	c.recs[id] = rec
	c.order = append(c.order, rec)
	cving, cved := c.countsLocked()
	c.tel.admitted(s.Kind, cving, cved)
	c.note("admit", id, fmt.Sprintf("%s %s", s.Kind, groupName(s)), 0)
	return c.statusLocked(rec), true, nil
}

// Delete removes an intent; its enforcement (including any pins or
// offlines it drove) is withdrawn at the next epoch.
func (c *Controller) Delete(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[id]
	if !ok {
		return false
	}
	delete(c.recs, id)
	for i, r := range c.order {
		if r == rec {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	cving, cved := c.countsLocked()
	c.tel.deleted(cving, cved)
	c.note("delete", id, fmt.Sprintf("%s %s", rec.spec.Kind, groupName(rec.spec)), 0)
	return true
}

// Get returns one intent's status.
func (c *Controller) Get(id string) (Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[id]
	if !ok {
		return Status{}, false
	}
	return c.statusLocked(rec), true
}

// List returns every intent's status in admission order.
func (c *Controller) List() []Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Status, 0, len(c.order))
	for _, rec := range c.order {
		out = append(out, c.statusLocked(rec))
	}
	return out
}

// Events returns the transition log (admit/reject/escalate/converge/
// diverge/delete), a deterministic record of the reconcile history.
func (c *Controller) Events() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.log))
	copy(out, c.log)
	return out
}

// Epoch implements cluster.FleetControl: observe, update each
// intent's convergence state, escalate the overdue, and emit the
// epoch's directives. Called on the coordinator goroutine.
func (c *Controller) Epoch(o cluster.FleetEpochObs) cluster.FleetDirectives {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	for _, rec := range c.order {
		c.reconcileLocked(rec, o)
	}
	return c.directivesLocked()
}

// reconcileLocked updates one intent's observed state and fires the
// escalation ladder when its deadline lapses.
func (c *Controller) reconcileLocked(rec *record, o cluster.FleetEpochObs) {
	ok := c.observeLocked(rec, o)
	if ok {
		rec.okRun++
		rec.failRun = 0
		if rec.okRun >= c.cfg.ConvergeEpochs && rec.state != StateConverged {
			rec.state = StateConverged
			if rec.convergedIn == 0 {
				rec.convergedIn = c.epoch - rec.admitted
				c.tel.converged(rec.convergedIn)
			}
			c.note("converge", rec.id, fmt.Sprintf("%s %s phase=%s observed=%.1fW", rec.spec.Kind, groupName(rec.spec), rec.phase, rec.observedW), o.VirtUS)
		}
		return
	}
	rec.okRun = 0
	rec.failRun++
	if rec.state == StateConverged {
		rec.state = StateConverging
		c.note("diverge", rec.id, fmt.Sprintf("%s %s observed=%.1fW", rec.spec.Kind, groupName(rec.spec), rec.observedW), o.VirtUS)
	}
	if next, can := nextPhase(rec.spec.Kind, rec.phase); can && rec.failRun >= rec.deadline {
		rec.phase = next
		rec.failRun = 0
		rec.escalations++
		c.tel.escalated(rec.spec.Kind, next)
		c.note("escalate", rec.id, fmt.Sprintf("%s %s to=%s observed=%.1fW deadline=%d", rec.spec.Kind, groupName(rec.spec), next, rec.observedW, rec.deadline), o.VirtUS)
	}
}

// nextPhase is the escalation ladder: caps go soft → pin → offline,
// drains soft → offline; floors and prefers have no hard rung (they
// are guarantees the allocator itself enforces).
func nextPhase(k Kind, p Phase) (Phase, bool) {
	switch k {
	case KindCap:
		switch p {
		case PhaseSoft:
			return PhasePin, true
		case PhasePin:
			return PhaseOffline, true
		}
	case KindDrain:
		if p == PhaseSoft {
			return PhaseOffline, true
		}
	}
	return p, false
}

// observeLocked evaluates one intent's convergence predicate against
// the epoch observation and refreshes its observed fields.
func (c *Controller) observeLocked(rec *record, o cluster.FleetEpochObs) bool {
	s := rec.spec
	if s.Level == 0 {
		// Single-leaf drain: converged when the leaf left service.
		act := 0
		if s.Group < len(o.NodeActive) && o.NodeActive[s.Group] {
			act = 1
		}
		rec.observedActive = act
		rec.observedW = 0
		return act == 0
	}
	if o.Groups == nil {
		return false
	}
	lo, hi := c.level1Range(s.Level, s.Group)
	var power, budget float64
	active := 0
	for g := lo; g < hi && g < len(o.Groups); g++ {
		power += o.Groups[g].AvgPowerW
		budget += o.Groups[g].BudgetW
		active += o.Groups[g].Active
	}
	rec.observedW = power
	rec.observedActive = active
	const tol = 1e-9
	switch s.Kind {
	case KindCap:
		return power <= s.Watts*(1+tol)
	case KindFloor:
		// The floor is a budget guarantee: converged once the
		// water-fill grants the subtree at least the floor (an idle
		// subtree drawing less power than its guarantee still has it).
		return budget >= s.Watts*(1-tol)
	case KindDrain:
		return active == 0
	case KindPrefer:
		// Weights apply to the very next allocation; declared
		// converged once an epoch has passed with them in force.
		return true
	}
	return false
}

// level1Range maps a level-l group to the range of level-1 groups
// [lo, hi) covering the same leaves (level-1 groups are consecutive
// leaf spans).
func (c *Controller) level1Range(level, group int) (lo, hi int) {
	leafLo, leafHi := c.shape.LeafRange(level, group)
	spanLo, spanHi := c.shape.LeafRange(1, 0)
	span := spanHi - spanLo
	if span <= 0 {
		return 0, 0
	}
	lo = leafLo / span
	hi = (leafHi + span - 1) / span
	if g1 := c.shape.Groups(1); hi > g1 {
		hi = g1
	}
	return lo, hi
}

// directivesLocked renders the admitted set (at its current phases)
// into the coordinator's directive form.
func (c *Controller) directivesLocked() cluster.FleetDirectives {
	levels := c.shape.Levels()
	groups := make([][]cluster.GroupDirective, levels)
	row := func(l int) []cluster.GroupDirective {
		if groups[l] == nil {
			groups[l] = make([]cluster.GroupDirective, c.shape.Groups(l))
		}
		return groups[l]
	}
	clear(c.nodeOv)
	markLeaves := func(s Spec, ov cluster.NodeOverride) {
		lo, hi := c.shape.LeafRange(s.Level, s.Group)
		for i := lo; i < hi; i++ {
			if ov > c.nodeOv[i] {
				c.nodeOv[i] = ov
			}
		}
	}
	for _, rec := range c.order {
		s := rec.spec
		switch s.Kind {
		case KindCap:
			switch rec.phase {
			case PhaseSoft:
				d := &row(s.Level)[s.Group]
				if d.CapW == 0 || s.Watts < d.CapW {
					d.CapW = s.Watts
				}
			case PhasePin:
				markLeaves(s, cluster.NodePinned)
			case PhaseOffline:
				markLeaves(s, cluster.NodeOffline)
			}
		case KindFloor:
			d := &row(s.Level)[s.Group]
			if s.Watts > d.MinW {
				d.MinW = s.Watts
			}
		case KindPrefer:
			row(s.Level)[s.Group].Weight = s.Weight
		case KindDrain:
			if rec.phase == PhaseOffline {
				markLeaves(s, cluster.NodeOffline)
				continue
			}
			if s.Level >= 1 {
				// Soft drain: cap the covered level-1 groups at their
				// guaranteed minima so they coast down while their work
				// finishes.
				lo, hi := c.level1Range(s.Level, s.Group)
				for g := lo; g < hi; g++ {
					m := c.cfg.Capability.groupMinOf(c.shape, g)
					d := &row(1)[g]
					if d.CapW == 0 || m < d.CapW {
						d.CapW = m
					}
				}
			}
		}
	}
	return cluster.FleetDirectives{Groups: groups, Nodes: c.nodeOv}
}

// statusLocked renders one record.
func (c *Controller) statusLocked(rec *record) Status {
	st := Status{
		ID:              rec.id,
		Spec:            rec.spec,
		State:           rec.state,
		Phase:           rec.phase,
		Epochs:          c.epoch - rec.admitted,
		OKEpochs:        rec.okRun,
		ConvergedEpochs: rec.convergedIn,
		Escalations:     rec.escalations,
		ObservedW:       rec.observedW,
		ObservedActive:  rec.observedActive,
	}
	if rec.spec.Kind == KindCap || rec.spec.Kind == KindFloor {
		st.TargetW = rec.spec.Watts
	}
	return st
}

// countsLocked is the active-intent gauge input: converging and
// converged counts.
func (c *Controller) countsLocked() (converging, converged int) {
	for _, rec := range c.order {
		if rec.state == StateConverged {
			converged++
		} else {
			converging++
		}
	}
	return
}

// note appends to the bounded transition log, records the obs span
// and the flight event.
func (c *Controller) note(event, id, detail string, virtUS float64) {
	line := fmt.Sprintf("epoch=%d %s %s %s", c.epoch, event, id, detail)
	if len(c.log) < 4096 {
		c.log = append(c.log, line)
	}
	c.cfg.Trace.Record(obs.Span{
		Name:   "intent-" + event,
		VirtUS: virtUS,
		Attrs:  map[string]float64{"epoch": float64(c.epoch)},
	})
	c.cfg.Flight.Note(obs.FlightEvent{
		Kind: "intent", Name: event, Detail: id + " " + detail, VirtUS: virtUS,
	})
}

// intentTelemetry owns the intent metric families; nil-safe when no
// registry is configured.
type intentTelemetry struct {
	admittedF  *telemetry.Family
	rejectedF  *telemetry.Family
	escalatedF *telemetry.Family
	convEpochs *telemetry.Series
	activeConv *telemetry.Series
	activeDone *telemetry.Series
}

var convergenceBuckets = []float64{1, 2, 3, 5, 8, 13, 21, 34, 55}

func newIntentTelemetry(reg *telemetry.Registry) *intentTelemetry {
	if reg == nil {
		return nil
	}
	t := &intentTelemetry{
		admittedF:  reg.Counter("aapm_intent_admitted_total", "Intents admitted, by kind.", "kind"),
		rejectedF:  reg.Counter("aapm_intent_rejected_total", "Intents rejected at admission, by machine-readable reason.", "reason"),
		escalatedF: reg.Counter("aapm_intent_escalations_total", "Escalation-ladder transitions, by intent kind and target phase.", "kind", "phase"),
	}
	t.convEpochs = reg.Histogram("aapm_intent_convergence_epochs", "Reconcile epochs from admission to first convergence.", convergenceBuckets).With()
	active := reg.Gauge("aapm_intent_active", "Admitted intents, by reconcile state.", "state")
	t.activeConv = active.With(string(StateConverging))
	t.activeDone = active.With(string(StateConverged))
	return t
}

func (t *intentTelemetry) admitted(k Kind, converging, converged int) {
	if t == nil {
		return
	}
	t.admittedF.With(string(k)).Inc()
	t.gauges(converging, converged)
}

func (t *intentTelemetry) rejected(code string) {
	if t == nil {
		return
	}
	t.rejectedF.With(code).Inc()
}

func (t *intentTelemetry) escalated(k Kind, p Phase) {
	if t == nil {
		return
	}
	t.escalatedF.With(string(k), string(p)).Inc()
}

func (t *intentTelemetry) converged(epochs int) {
	if t == nil {
		return
	}
	t.convEpochs.Observe(float64(epochs))
}

func (t *intentTelemetry) deleted(converging, converged int) {
	if t == nil {
		return
	}
	t.gauges(converging, converged)
}

func (t *intentTelemetry) gauges(converging, converged int) {
	t.activeConv.Set(float64(converging))
	t.activeDone.Set(float64(converged))
}
