package intent

import (
	"fmt"

	"aapm/internal/alloc"
	"aapm/internal/cluster"
)

// Capability is the fleet's aggregate ability, the fixed side of the
// admission check: tree geometry, the root budget, the per-node floor
// and ceiling, and any static per-group minima.
type Capability struct {
	// Nodes/Levels/Fanout describe the allocation tree (defaults
	// resolve as cluster.RunFleet's: Levels 0 → 1, Fanout 0 → 64).
	Nodes  int
	Levels int
	Fanout int
	// BudgetW is the root cap; FloorW the per-node minimum share
	// (0 → 4 W, as the coordinator).
	BudgetW float64
	FloorW  float64
	// MaxNodeW bounds one node's achievable power (top p-state);
	// 0 → 25 W, generous for the Pentium M platform.
	MaxNodeW float64
	// GroupMinW mirrors FleetConfig.Groups: static level-1 minima
	// (nil = none).
	GroupMinW []float64
}

// CapabilityOf derives the capability from a fleet config, resolving
// the same defaults RunFleet does.
func CapabilityOf(cfg cluster.FleetConfig) Capability {
	c := Capability{
		Nodes:   len(cfg.Nodes),
		Levels:  cfg.Levels,
		Fanout:  cfg.Fanout,
		BudgetW: cfg.BudgetW,
		FloorW:  cfg.FloorW,
	}
	if cfg.Groups != nil {
		c.GroupMinW = make([]float64, len(cfg.Groups))
		for g, gs := range cfg.Groups {
			c.GroupMinW[g] = gs.MinW
		}
	}
	return c.withDefaults()
}

func (c Capability) withDefaults() Capability {
	if c.FloorW == 0 {
		c.FloorW = 4
	}
	if c.MaxNodeW == 0 {
		c.MaxNodeW = 25
	}
	return c
}

func (c Capability) shape() cluster.TreeShape {
	return cluster.ShapeOf(c.Nodes, c.Levels, c.Fanout)
}

// admit evaluates candidate cand against the already-admitted set: a
// nil return admits it. The check is whole-set feasibility — every
// group's guaranteed minimum must fit under every cap above it, under
// the subtree's achievable power (drained leaves contribute nothing),
// and the fleet-wide minima under the root budget — so admission
// order never changes the admitted set's meaning, only which intent
// gets the blame.
func admit(c Capability, shape cluster.TreeShape, admitted []Spec, cand Spec) *Reason {
	if r := cand.validate(shape); r != nil {
		return r
	}
	all := make([]Spec, 0, len(admitted)+1)
	all = append(all, admitted...)
	all = append(all, cand)
	n := shape.Nodes()
	levels := shape.Levels()

	// Leaf pass: drained mask and the per-leaf min/achievable bases.
	drained := make([]bool, n)
	for _, s := range all {
		if s.Kind != KindDrain {
			continue
		}
		lo, hi := shape.LeafRange(s.Level, s.Group)
		for i := lo; i < hi; i++ {
			drained[i] = true
		}
	}
	live := 0
	for _, d := range drained {
		if !d {
			live++
		}
	}
	if live == 0 {
		return reasonf(ReasonDrainNoCapacity, "draining %s would leave 0 of %d nodes in service", groupName(cand), n)
	}

	// Per-group intent aggregates: the tightest cap and highest floor
	// declared on each (level, group).
	capAt := map[[2]int]float64{}
	floorAt := map[[2]int]float64{}
	for _, s := range all {
		k := [2]int{s.Level, s.Group}
		switch s.Kind {
		case KindCap:
			if cur, ok := capAt[k]; !ok || s.Watts < cur {
				capAt[k] = s.Watts
			}
		case KindFloor:
			if cur, ok := floorAt[k]; !ok || s.Watts > cur {
				floorAt[k] = s.Watts
			}
		}
	}

	// Bottom-up sweep: minW is the guaranteed minimum the water-fill
	// must honor (child sums raised by static minima and floor
	// intents; drained leaves release their floors), achW the most
	// power the subtree could draw (live leaves at the node ceiling,
	// clamped by each cap on the way up). Any group where minW
	// exceeds achW — or the root, where minW must also fit the
	// budget — is the infeasibility witness.
	minW := make([]float64, n)
	achW := make([]float64, n)
	for i := 0; i < n; i++ {
		if !drained[i] {
			minW[i] = c.FloorW
			achW[i] = c.MaxNodeW
		}
	}
	for l := 1; l < levels; l++ {
		nm := make([]float64, shape.Groups(l))
		na := make([]float64, shape.Groups(l))
		for g := range nm {
			lo, hi := shape.ChildRange(l, g)
			var m, a float64
			for k := lo; k < hi; k++ {
				m += minW[k]
				a += achW[k]
			}
			if l == 1 && c.GroupMinW != nil && c.GroupMinW[g] > m {
				m = c.GroupMinW[g]
			}
			if f, ok := floorAt[[2]int{l, g}]; ok && f > m {
				m = f
			}
			if cw, ok := capAt[[2]int{l, g}]; ok && cw < a {
				a = cw
			}
			if m > a {
				where := fmt.Sprintf("group %d/%d guaranteed minimum %.1f W exceeds its %.1f W capacity", l, g, m, a)
				return infeasible(cand, where, false)
			}
			nm[g], na[g] = m, a
		}
		minW, achW = nm, na
	}
	var rootMin float64
	for _, m := range minW {
		rootMin += m
	}
	if rootMin > c.BudgetW {
		where := fmt.Sprintf("fleet guaranteed minima total %.1f W exceed the %.1f W budget", rootMin, c.BudgetW)
		return infeasible(cand, where, true)
	}
	return nil
}

// infeasible attributes a min-exceeds-capacity violation to the
// candidate's kind; root marks a budget (rather than cap/achievable)
// violation.
func infeasible(cand Spec, where string, root bool) *Reason {
	switch cand.Kind {
	case KindCap:
		return reasonf(ReasonCapBelowFloor, "%s after capping %s at %.1f W", where, groupName(cand), cand.Watts)
	case KindFloor:
		code := ReasonFloorExceedsCap
		if root {
			code = ReasonFloorsExceedBudget
		}
		return reasonf(code, "%s after flooring %s at %.1f W", where, groupName(cand), cand.Watts)
	case KindDrain:
		return reasonf(ReasonDrainStrandsFloor, "%s after draining %s", where, groupName(cand))
	default:
		return reasonf(ReasonBadSpec, "%s", where)
	}
}

func groupName(s Spec) string {
	if s.Level == 0 {
		return fmt.Sprintf("node %d", s.Group)
	}
	return fmt.Sprintf("group %d/%d", s.Level, s.Group)
}

// groupMinOf is the guaranteed minimum of level-1 group g with no
// intents applied: max(static minimum, leaf span × floor). The drain
// controller caps a draining group at this value.
func (c Capability) groupMinOf(shape cluster.TreeShape, g int) float64 {
	lo, hi := shape.LeafRange(1, g)
	m := alloc.MinTotalW(c.FloorW, []int{hi - lo}, nil)
	if c.GroupMinW != nil && c.GroupMinW[g] > m {
		m = c.GroupMinW[g]
	}
	return m
}
