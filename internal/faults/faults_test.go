package faults

import (
	"math"
	"testing"
	"time"

	"aapm/internal/counters"
)

func sample(cycles, decoded uint64) counters.Sample {
	var s counters.Sample
	s.SetCount(counters.Cycles, cycles)
	s.SetCount(counters.InstDecoded, decoded)
	return s
}

func TestPlanValidate(t *testing.T) {
	good := []Plan{
		{},
		Preset(0.05),
		{Sensor: SensorPlan{DropoutProb: 1, DropoutTicks: 100}},
		{Actuator: ActuatorPlan{FailProb: 0.5, Retries: 16, JitterStd: 4}},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	bad := []Plan{
		{Sensor: SensorPlan{DropoutProb: -0.1}},
		{Sensor: SensorPlan{StuckProb: 1.5}},
		{Sensor: SensorPlan{DropoutTicks: -1}},
		{Sensor: SensorPlan{SpikeMagW: -1}},
		{Sensor: SensorPlan{GainDriftPerTick: 0.5}},
		{Counter: CounterPlan{MissProb: math.NaN()}},
		{Actuator: ActuatorPlan{FailProb: 2}},
		{Actuator: ActuatorPlan{JitterStd: -1}},
		{Actuator: ActuatorPlan{Retries: 99}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

func TestZero(t *testing.T) {
	if !(Plan{}).Zero() {
		t.Error("zero plan should report Zero")
	}
	if (Plan{Sensor: SensorPlan{DropoutProb: 0.1}}).Zero() {
		t.Error("dropout plan should not report Zero")
	}
	if Preset(0.05).Zero() {
		t.Error("preset should not report Zero")
	}
}

// TestDeterminism: two injectors on the same plan+seed produce the
// same corrupted values, event log and transition outcomes.
func TestDeterminism(t *testing.T) {
	plan := Preset(0.2)
	a, err := NewInjector(plan, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(plan, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		a.BeginTick()
		b.BeginTick()
		s := sample(20_000_000, 24_000_000)
		sa, sb := a.Counters(s), b.Counters(s)
		if sa != sb {
			t.Fatalf("tick %d: counter samples diverge", i)
		}
		wa, wb := a.Sense(14.0), b.Sense(14.0)
		if wa != wb && !(math.IsNaN(wa) && math.IsNaN(wb)) {
			t.Fatalf("tick %d: sensed %g vs %g", i, wa, wb)
		}
		oka, ea := a.Transition(30 * time.Microsecond)
		okb, eb := b.Transition(30 * time.Microsecond)
		if oka != okb || ea != eb {
			t.Fatalf("tick %d: transitions diverge", i)
		}
	}
	ca, cb := a.Counts(), b.Counts()
	if len(ca) == 0 {
		t.Fatal("20% preset injected nothing over 500 ticks")
	}
	for k, v := range ca {
		if cb[k] != v {
			t.Fatalf("count %q: %d vs %d", k, v, cb[k])
		}
	}
}

// TestSeedsDiffer: different seeds draw different fault timelines.
func TestSeedsDiffer(t *testing.T) {
	plan := Plan{Sensor: SensorPlan{DropoutProb: 0.3, DropoutTicks: 2}}
	a, _ := NewInjector(plan, 1)
	b, _ := NewInjector(plan, 2)
	same := true
	for i := 0; i < 200; i++ {
		a.BeginTick()
		b.BeginTick()
		a.Counters(counters.Sample{})
		b.Counters(counters.Sample{})
		if math.IsNaN(a.Sense(10)) != math.IsNaN(b.Sense(10)) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical dropout timelines")
	}
}

// TestEnvStreamPolicyIndependent: the sensor/counter fault timeline
// must not depend on how often Transition is consulted (policies
// diverge there), so paired comparisons stay paired.
func TestEnvStreamPolicyIndependent(t *testing.T) {
	plan := Preset(0.15)
	a, _ := NewInjector(plan, 7)
	b, _ := NewInjector(plan, 7)
	for i := 0; i < 300; i++ {
		a.BeginTick()
		b.BeginTick()
		s := sample(10_000_000, 9_000_000)
		sa, sb := a.Counters(s), b.Counters(s)
		wa, wb := a.Sense(12.5), b.Sense(12.5)
		if sa != sb {
			t.Fatalf("tick %d: counter streams diverged", i)
		}
		if wa != wb && !(math.IsNaN(wa) && math.IsNaN(wb)) {
			t.Fatalf("tick %d: sensor streams diverged (%g vs %g)", i, wa, wb)
		}
		// Only a asks for transitions; b never does.
		if i%3 == 0 {
			a.Transition(30 * time.Microsecond)
		}
	}
}

func TestSensorDropoutEpisode(t *testing.T) {
	in, _ := NewInjector(Plan{Sensor: SensorPlan{DropoutProb: 1, DropoutTicks: 3}}, 1)
	nan := 0
	for i := 0; i < 30; i++ {
		in.BeginTick()
		if math.IsNaN(in.Sense(10)) {
			nan++
		}
	}
	if nan != 30 {
		t.Errorf("DropoutProb=1: %d/30 NaN samples, want 30", nan)
	}
	if in.Counts()["sensor/dropout"] == 0 {
		t.Error("no dropout events logged")
	}
}

func TestSensorStuck(t *testing.T) {
	in, _ := NewInjector(Plan{Sensor: SensorPlan{StuckProb: 1, StuckTicks: 5}}, 1)
	in.BeginTick()
	first := in.Sense(10) // no previous value: passes through, arms stuck
	if first != 10 {
		t.Fatalf("first sample %g, want 10", first)
	}
	for i := 0; i < 5; i++ {
		in.BeginTick()
		if got := in.Sense(20); got != 10 {
			t.Fatalf("stuck tick %d read %g, want frozen 10", i, got)
		}
	}
}

func TestSensorGainDrift(t *testing.T) {
	in, _ := NewInjector(Plan{Sensor: SensorPlan{GainDriftPerTick: 1e-3}}, 1)
	var last float64
	for i := 0; i < 100; i++ {
		in.BeginTick()
		last = in.Sense(10)
	}
	want := 10 * math.Pow(1.001, 100)
	if math.Abs(last-want) > 1e-9 {
		t.Errorf("after 100 ticks of 0.1%% drift: %g, want %g", last, want)
	}
}

func TestCounterMiss(t *testing.T) {
	in, _ := NewInjector(Plan{Counter: CounterPlan{MissProb: 1}}, 1)
	in.BeginTick()
	out := in.Counters(sample(1000, 900))
	if out != (counters.Sample{}) {
		t.Errorf("missed read returned non-zero sample %+v", out)
	}
}

func TestCounterSaturate(t *testing.T) {
	in, _ := NewInjector(Plan{Counter: CounterPlan{SaturateProb: 1, SaturateAt: 500}}, 1)
	in.BeginTick()
	out := in.Counters(sample(1000, 100))
	if out.Count(counters.Cycles) != 500 {
		t.Errorf("cycles %d, want saturated 500", out.Count(counters.Cycles))
	}
	if out.Count(counters.InstDecoded) != 100 {
		t.Errorf("decoded %d, want untouched 100", out.Count(counters.InstDecoded))
	}
}

func TestCounterWrapProducesImplausibleRate(t *testing.T) {
	in, _ := NewInjector(Plan{Counter: CounterPlan{WrapProb: 1}}, 3)
	saw := false
	for i := 0; i < 50 && !saw; i++ {
		in.BeginTick()
		out := in.Counters(sample(20_000_000, 24_000_000))
		for e := counters.Event(0); int(e) < counters.NumEvents; e++ {
			if out.Count(e) > 1<<31 {
				saw = true
			}
		}
	}
	if !saw {
		t.Error("wrap never produced a >2^31 delta in 50 ticks")
	}
}

func TestActuatorAlwaysFails(t *testing.T) {
	in, _ := NewInjector(Plan{Actuator: ActuatorPlan{FailProb: 1, Retries: 2}}, 1)
	ok, extra := in.Transition(30 * time.Microsecond)
	if ok {
		t.Fatal("FailProb=1 transition succeeded")
	}
	if extra < 3*30*time.Microsecond {
		t.Errorf("failed 3-attempt transition cost %v, want >= 90µs", extra)
	}
	if in.Counts()["actuator/transition-fail"] != 1 || in.Counts()["actuator/transition-retry"] != 2 {
		t.Errorf("counts = %v, want 1 fail + 2 retries", in.Counts())
	}
}

func TestActuatorCleanWhenNoFaults(t *testing.T) {
	in, _ := NewInjector(Plan{Sensor: SensorPlan{DropoutProb: 0.5}}, 1)
	ok, extra := in.Transition(30 * time.Microsecond)
	if !ok || extra != 0 {
		t.Errorf("no actuator faults: got ok=%v extra=%v, want true/0", ok, extra)
	}
}

func TestDrain(t *testing.T) {
	in, _ := NewInjector(Plan{Counter: CounterPlan{MissProb: 1}}, 1)
	in.BeginTick()
	in.Counters(sample(10, 5))
	ev := in.Drain()
	if len(ev) != 1 || ev[0].Kind != "miss" || ev[0].Source != "counters" || ev[0].Tick != 1 {
		t.Fatalf("Drain = %+v, want one counters/miss at tick 1", ev)
	}
	if len(in.Drain()) != 0 {
		t.Error("second Drain not empty")
	}
}

func TestInvalidPlanRejected(t *testing.T) {
	if _, err := NewInjector(Plan{Sensor: SensorPlan{DropoutProb: 2}}, 1); err == nil {
		t.Fatal("NewInjector accepted an invalid plan")
	}
}
