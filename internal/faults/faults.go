// Package faults is a deterministic, seed-driven fault-injection
// subsystem for the simulated platform. It models the ways a real
// sensing and actuation chain misbehaves in production — documented
// for counter-based power monitoring (dropped samples, counter
// overflow/saturation) and energy-register readers (stale and missing
// reads) — so the power-management policies can be evaluated under
// adversity rather than only under Gaussian noise.
//
// Three fault classes compose into a Plan:
//
//   - SensorPlan corrupts the measured-power path after the analog
//     chain (sensor.Chain): dropout episodes (the DAQ returns no
//     sample, surfaced as NaN), stuck-at episodes (the reading
//     freezes), single-sample spikes, and slow multiplicative gain
//     drift.
//   - CounterPlan corrupts the PMU sample the governor observes
//     (counters.Sample): missed reads (an all-zero delta, as when the
//     driver's snapshot fails to update), 32-bit overflow wrap of one
//     event, and saturation of all events at a ceiling.
//   - ActuatorPlan corrupts p-state transitions (pstate.Actuator):
//     transition requests fail with a probability and are retried a
//     bounded number of times, each attempt costing (jittered) stall
//     time.
//
// An Injector instantiates a Plan for one run. It draws environment
// faults (sensor + counters) from one RNG stream with a fixed number
// of draws per interval, and actuation faults from a second stream —
// so two policies running on the same seed observe the *same* sensor
// and counter fault timeline even when their p-state decisions
// diverge, keeping policy comparisons paired.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"aapm/internal/counters"
)

// SensorPlan describes faults on the measured-power path.
type SensorPlan struct {
	// DropoutProb is the per-interval probability of entering a
	// dropout episode, during which the sensed value is NaN (the
	// acquisition returned no sample).
	DropoutProb float64
	// DropoutTicks is the episode length in intervals; 0 selects 5.
	DropoutTicks int
	// StuckProb is the per-interval probability the reading freezes at
	// its previous value for StuckTicks intervals.
	StuckProb float64
	// StuckTicks is the stuck episode length; 0 selects 10.
	StuckTicks int
	// SpikeProb is the per-interval probability of a single-sample
	// additive spike of up to ±SpikeMagW.
	SpikeProb float64
	// SpikeMagW is the spike magnitude bound; 0 selects 10 W.
	SpikeMagW float64
	// GainDriftPerTick is a multiplicative calibration drift applied
	// every interval (e.g. 1e-5 reads 1% high after 1000 intervals).
	GainDriftPerTick float64
}

// CounterPlan describes faults on the PMU sample path.
type CounterPlan struct {
	// MissProb is the per-interval probability of a missed read: the
	// observed sample is all-zero, indistinguishable from an idle
	// interval.
	MissProb float64
	// WrapProb is the per-interval probability that one event's count
	// wraps as a 32-bit counter would, yielding a garbage-huge delta.
	WrapProb float64
	// SaturateProb is the per-interval probability that every event
	// count clamps at SaturateAt.
	SaturateProb float64
	// SaturateAt is the saturation ceiling; 0 selects 1<<24.
	SaturateAt uint64
}

// ActuatorPlan describes faults on the p-state transition path.
type ActuatorPlan struct {
	// FailProb is the probability that a transition attempt fails.
	FailProb float64
	// Retries is how many extra attempts follow a failure before the
	// transition is abandoned (the actuator stays at its current
	// state). Negative disables retries.
	Retries int
	// JitterStd is the lognormal sigma of the per-attempt latency
	// multiplier (0 = exact nominal latency).
	JitterStd float64
}

// Plan composes the three fault classes. The zero value injects
// nothing.
type Plan struct {
	Sensor   SensorPlan
	Counter  CounterPlan
	Actuator ActuatorPlan
	// Seed is folded into the machine seed so distinct plans on the
	// same platform draw distinct fault timelines.
	Seed int64
}

// Validate reports the first implausible plan parameter.
func (p Plan) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"sensor dropout", p.Sensor.DropoutProb},
		{"sensor stuck", p.Sensor.StuckProb},
		{"sensor spike", p.Sensor.SpikeProb},
		{"counter miss", p.Counter.MissProb},
		{"counter wrap", p.Counter.WrapProb},
		{"counter saturate", p.Counter.SaturateProb},
		{"actuator fail", p.Actuator.FailProb},
	}
	for _, pr := range probs {
		if math.IsNaN(pr.v) || pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %g outside [0,1]", pr.name, pr.v)
		}
	}
	switch {
	case p.Sensor.DropoutTicks < 0 || p.Sensor.StuckTicks < 0:
		return fmt.Errorf("faults: negative episode length")
	case p.Sensor.SpikeMagW < 0 || math.IsNaN(p.Sensor.SpikeMagW):
		return fmt.Errorf("faults: negative spike magnitude")
	case math.IsNaN(p.Sensor.GainDriftPerTick) || math.Abs(p.Sensor.GainDriftPerTick) > 0.01:
		return fmt.Errorf("faults: gain drift %g per tick outside [-0.01,0.01]", p.Sensor.GainDriftPerTick)
	case p.Actuator.JitterStd < 0 || math.IsNaN(p.Actuator.JitterStd) || p.Actuator.JitterStd > 4:
		return fmt.Errorf("faults: actuator jitter sigma %g outside [0,4]", p.Actuator.JitterStd)
	case p.Actuator.Retries > 16:
		return fmt.Errorf("faults: %d retries exceeds 16", p.Actuator.Retries)
	}
	return nil
}

// Zero reports whether the plan injects nothing (an Injector is
// unnecessary).
func (p Plan) Zero() bool {
	return p.Sensor == SensorPlan{} && p.Counter == CounterPlan{} && p.Actuator == ActuatorPlan{}
}

// Preset returns a balanced plan exercising every fault class, scaled
// by a base per-interval rate (e.g. 0.05 = 5%).
func Preset(rate float64) Plan {
	return Plan{
		Sensor: SensorPlan{
			DropoutProb: rate, DropoutTicks: 5,
			StuckProb: rate / 2, StuckTicks: 10,
			SpikeProb: rate, SpikeMagW: 8,
		},
		Counter: CounterPlan{
			MissProb: rate, WrapProb: rate / 4, SaturateProb: rate / 4,
		},
		Actuator: ActuatorPlan{FailProb: rate, Retries: 2, JitterStd: 0.5},
	}
}

// Event is one injected fault occurrence.
type Event struct {
	// Tick is the injector's interval counter when the fault fired.
	Tick int
	// Source is "sensor", "counters" or "actuator".
	Source string
	// Kind names the fault: dropout, stuck, spike, miss, wrap,
	// saturate, transition-fail, transition-retry.
	Kind string
	// Detail is an optional human-readable annotation.
	Detail string
}

// Injector applies one Plan to one run. Methods are called by the
// machine session in a fixed per-interval order: BeginTick, Counters,
// Sense, then (only when the governor requests a transition)
// Transition.
type Injector struct {
	plan Plan
	// envRng drives sensor+counter faults with a constant number of
	// draws per interval, so the environment fault timeline is
	// identical across policies at the same seed. actRng drives
	// transition faults, which are inherently policy-dependent.
	envRng *rand.Rand
	actRng *rand.Rand

	tick      int
	dropLeft  int
	stuckLeft int
	stuckW    float64
	haveStuck bool
	gain      float64

	events []Event
	counts map[string]int
}

// NewInjector validates the plan and builds an injector whose fault
// timeline is a pure function of (plan, seed).
func NewInjector(plan Plan, seed int64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	seed ^= plan.Seed
	return &Injector{
		plan:   plan,
		envRng: rand.New(rand.NewSource(seed ^ 0x5eed_fa01)),
		actRng: rand.New(rand.NewSource(seed ^ 0x0ac7_0a70)),
		gain:   1,
		counts: make(map[string]int),
	}, nil
}

// BeginTick advances the interval counter. Call once per monitoring
// interval before Counters/Sense.
func (in *Injector) BeginTick() { in.tick++ }

func (in *Injector) log(source, kind, detail string) {
	in.counts[source+"/"+kind]++
	in.events = append(in.events, Event{Tick: in.tick, Source: source, Kind: kind, Detail: detail})
}

// Counters returns the governor-visible PMU sample for the interval,
// possibly corrupted. It always consumes exactly four RNG draws so the
// environment stream stays aligned across policies.
func (in *Injector) Counters(truth counters.Sample) counters.Sample {
	p := in.plan.Counter
	dMiss := in.envRng.Float64()
	dWrap := in.envRng.Float64()
	dSat := in.envRng.Float64()
	dEvent := in.envRng.Float64()

	if p.MissProb > 0 && dMiss < p.MissProb {
		in.log("counters", "miss", "snapshot not updated; all-zero sample")
		return counters.Sample{}
	}
	out := truth
	if p.SaturateProb > 0 && dSat < p.SaturateProb {
		at := p.SaturateAt
		if at == 0 {
			at = 1 << 24
		}
		for e := counters.Event(0); int(e) < counters.NumEvents; e++ {
			if out.Count(e) > at {
				out.SetCount(e, at)
			}
		}
		in.log("counters", "saturate", fmt.Sprintf("counts clamped at %d", at))
	}
	if p.WrapProb > 0 && dWrap < p.WrapProb {
		e := counters.Event(int(dEvent * float64(counters.NumEvents)))
		if int(e) >= counters.NumEvents {
			e = counters.Event(counters.NumEvents - 1)
		}
		// A 32-bit counter wrapped between reads: the driver's unsigned
		// delta is the wrapped residue, garbage relative to the true
		// interval count.
		wrapped := (1 << 32) - (out.Count(e) & 0xffff_ffff)
		out.SetCount(e, wrapped)
		in.log("counters", "wrap", fmt.Sprintf("%v delta wrapped to %d", e, wrapped))
	}
	return out
}

// Sense returns the acquired power sample for the interval, possibly
// corrupted; NaN means the acquisition dropped the sample. It always
// consumes exactly four RNG draws.
func (in *Injector) Sense(trueMeasuredW float64) float64 {
	p := in.plan.Sensor
	dDrop := in.envRng.Float64()
	dStuck := in.envRng.Float64()
	dSpike := in.envRng.Float64()
	dMag := in.envRng.Float64()

	in.gain *= 1 + p.GainDriftPerTick
	w := trueMeasuredW * in.gain

	switch {
	case in.dropLeft > 0:
		in.dropLeft--
		return math.NaN()
	case p.DropoutProb > 0 && dDrop < p.DropoutProb:
		ticks := p.DropoutTicks
		if ticks == 0 {
			ticks = 5
		}
		in.dropLeft = ticks - 1
		in.log("sensor", "dropout", fmt.Sprintf("%d-interval acquisition dropout", ticks))
		return math.NaN()
	case in.stuckLeft > 0:
		in.stuckLeft--
		return in.stuckW
	case p.StuckProb > 0 && dStuck < p.StuckProb && in.haveStuck:
		ticks := p.StuckTicks
		if ticks == 0 {
			ticks = 10
		}
		in.stuckLeft = ticks - 1
		in.log("sensor", "stuck", fmt.Sprintf("reading frozen at %.2f W for %d intervals", in.stuckW, ticks))
		return in.stuckW
	}
	if p.SpikeProb > 0 && dSpike < p.SpikeProb {
		mag := p.SpikeMagW
		if mag == 0 {
			mag = 10
		}
		w += (2*dMag - 1) * mag
		if w < 0 {
			w = 0
		}
		in.log("sensor", "spike", "")
	}
	in.stuckW, in.haveStuck = w, true
	return w
}

// Transition resolves one requested p-state transition: ok reports
// whether it eventually succeeded, and extra is stall time beyond the
// nominal latency of a clean transition (retry costs and jitter; on
// failure it is the full cost of all failed attempts).
func (in *Injector) Transition(nominal time.Duration) (ok bool, extra time.Duration) {
	p := in.plan.Actuator
	if p.FailProb <= 0 && p.JitterStd <= 0 {
		return true, 0
	}
	attempt := func() time.Duration {
		if p.JitterStd <= 0 {
			return nominal
		}
		f := math.Exp(p.JitterStd * in.actRng.NormFloat64())
		return time.Duration(float64(nominal) * f)
	}
	cost := attempt()
	if p.FailProb <= 0 || in.actRng.Float64() >= p.FailProb {
		return true, cost - nominal
	}
	total := cost
	for r := 0; r < p.Retries; r++ {
		in.log("actuator", "transition-retry", "")
		cost = attempt()
		if in.actRng.Float64() >= p.FailProb {
			// The successful attempt's nominal cost is charged by the
			// actuator itself; everything else is extra.
			return true, total + cost - nominal
		}
		total += cost
	}
	in.log("actuator", "transition-fail", fmt.Sprintf("abandoned after %d attempts", 1+p.Retries))
	return false, total
}

// Drain returns and clears the events logged since the last call.
func (in *Injector) Drain() []Event {
	ev := in.events
	in.events = nil
	return ev
}

// Counts returns cumulative fault tallies keyed "source/kind".
func (in *Injector) Counts() map[string]int {
	out := make(map[string]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}
