// Fuzz lives in an external test package so it can close the loop
// through machine (which imports faults) without an import cycle.
package faults_test

import (
	"math"
	"testing"
	"time"

	"aapm/internal/control"
	"aapm/internal/counters"
	"aapm/internal/faults"
	"aapm/internal/machine"
	"aapm/internal/spec"
)

// FuzzFaultPlan throws arbitrary plan parameters at the injector and a
// full bounded machine run: any plan that passes Validate must drive a
// run to completion without panic, deadlock or an out-of-range
// decision — no matter how hostile the fault schedule.
func FuzzFaultPlan(f *testing.F) {
	f.Add(0.05, 0.02, 0.01, 0.1, 0.05, 0.05, 0.1, 0.5, int16(2), int16(5), int64(1))
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 4.0, int16(16), int16(1), int64(99))
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, int16(0), int16(0), int64(0))
	f.Add(math.NaN(), -1.0, 2.0, 0.5, 0.5, 0.5, 0.5, -0.1, int16(-1), int16(-3), int64(7))
	f.Fuzz(func(t *testing.T, drop, stuck, spike, miss, wrap, sat, fail, jitter float64,
		retries, episode int16, seed int64) {
		plan := faults.Plan{
			Sensor: faults.SensorPlan{
				DropoutProb: drop, DropoutTicks: int(episode),
				StuckProb: stuck, StuckTicks: int(episode),
				SpikeProb: spike, SpikeMagW: 8,
			},
			Counter: faults.CounterPlan{
				MissProb: miss, WrapProb: wrap, SaturateProb: sat,
			},
			Actuator: faults.ActuatorPlan{
				FailProb: fail, Retries: int(retries), JitterStd: jitter,
			},
			Seed: seed,
		}
		inj, err := faults.NewInjector(plan, seed)
		if (err == nil) != (plan.Validate() == nil) {
			t.Fatalf("NewInjector error %v disagrees with Validate %v", err, plan.Validate())
		}
		if err != nil {
			return
		}
		// Drive the injector bare for a few hundred intervals.
		for i := 0; i < 300; i++ {
			inj.BeginTick()
			var truth counters.Sample
			truth.SetCount(counters.Cycles, uint64(10_000_000+i))
			truth.SetCount(counters.InstDecoded, uint64(8_000_000+i))
			truth.SetCount(counters.InstRetired, 7_000_000)
			_ = inj.Counters(truth)
			w := inj.Sense(12.5)
			if !math.IsNaN(w) && w < 0 {
				t.Fatalf("tick %d: Sense returned negative power %g", i, w)
			}
			if i%3 == 0 {
				ok, extra := inj.Transition(30 * time.Microsecond)
				if !ok && extra < 0 {
					t.Fatalf("tick %d: failed transition with negative stall %v", i, extra)
				}
			}
			for _, e := range inj.Drain() {
				if e.Source == "" || e.Kind == "" {
					t.Fatalf("tick %d: event with empty source/kind: %+v", i, e)
				}
			}
		}
		// Close the loop: a bounded run under a degraded PM must finish.
		w, err := spec.ByName("ammp")
		if err != nil {
			t.Fatal(err)
		}
		w.Iterations = 1
		m, err := machine.New(machine.Config{Faults: &plan, Seed: seed, MaxTicks: 1000})
		if err != nil {
			t.Fatal(err)
		}
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 13.5, Degrade: true})
		if err != nil {
			t.Fatal(err)
		}
		run, err := m.Run(w, pm)
		if err != nil {
			t.Fatalf("run under plan %+v: %v", plan, err)
		}
		if len(run.Rows) == 0 || run.Duration <= 0 {
			t.Fatalf("run produced no trace: %d rows, %v", len(run.Rows), run.Duration)
		}
	})
}
