package phase

import (
	"fmt"

	"aapm/internal/pstate"
	"aapm/internal/trace"
)

// FromTrace inverts a recorded run back into a phase workload: each
// 10 ms row becomes a phase whose parameters reproduce the observed
// IPC, decode rate and memory-boundedness at the frequency the row ran
// at. Replaying the workload at that frequency reproduces the original
// counters; replaying under a different policy predicts how the same
// execution would have behaved elsewhere — the record-and-replay
// workflow a real deployment would use to evaluate policies offline
// from production traces.
//
// The inversion is under-determined in two places and resolves them
// conservatively: the L1-miss stall budget is split between L2 and
// DRAM in proportion to the row's bus-vs-L2 request rates, and the
// overlap factor (MLP) is fixed at the given value (2 matches most of
// the suite).
func FromTrace(name string, rows []trace.Row, table *pstate.Table, mlp float64) (Workload, error) {
	if len(rows) == 0 {
		return Workload{}, fmt.Errorf("phase: empty trace")
	}
	if mlp < 1 {
		mlp = 2
	}
	w := Workload{Name: name}
	for i, r := range rows {
		if r.Instructions <= 0 || r.IPC <= 0 {
			// Idle interval.
			w.Phases = append(w.Phases, Params{
				Name:         fmt.Sprintf("%s/idle%d", name, i),
				IdleDuration: r.Interval,
			})
			continue
		}
		ps, err := table.ByFreq(r.FreqMHz)
		if err != nil {
			return Workload{}, fmt.Errorf("phase: row %d: %w", i, err)
		}
		cpi := 1.0 / r.IPC
		stallPerInst := r.DCU * cpi // DCU occupancy × cycles/instr

		// Split the stall budget by observed traffic: bus requests
		// carry the frequency-scaled DRAM latency, the rest is L2.
		l2RPI := r.L2PC * cpi
		memRPI := r.MemPC * cpi
		memLatCycles := MemLatencyNs * float64(ps.FreqMHz) / 1000.0
		l2Weight := l2RPI * L2LatencyCycles
		memWeight := memRPI * memLatCycles
		var l2Stall, memStall float64
		if tot := l2Weight + memWeight; tot > 0 {
			l2Stall = stallPerInst * l2Weight / tot
			memStall = stallPerInst * memWeight / tot
		}
		core := cpi - l2Stall - memStall
		if core <= 0.05 {
			core = 0.05
		}
		p := Params{
			Name:         fmt.Sprintf("%s/p%d", name, i),
			Instructions: r.Instructions,
			CPICore:      core,
			L2APKI:       l2Stall * 1000 * mlp / L2LatencyCycles,
			MLP:          mlp,
			SpecFactor:   1,
			StallFrac:    0,
		}
		if memLatCycles > 0 {
			p.MemAPKI = memStall * 1000 * mlp / memLatCycles
		}
		if p.MemAPKI > p.L2APKI {
			// Consistency: a miss must have been an access.
			p.L2APKI = p.MemAPKI
		}
		p.MemBPI = p.MemAPKI * 64 / 1000
		if r.IPC > 0 && r.DPC > r.IPC {
			p.SpecFactor = r.DPC / r.IPC
		}
		if err := p.Validate(); err != nil {
			return Workload{}, fmt.Errorf("phase: row %d inversion implausible: %w", i, err)
		}
		w.Phases = append(w.Phases, p)
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}
