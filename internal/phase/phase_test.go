package phase

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"aapm/internal/pstate"
)

func corePhase() Params {
	return Params{
		Name: "core", Instructions: 1e9,
		CPICore: 0.6, L2APKI: 5, MemAPKI: 0.1, MLP: 2, SpecFactor: 1.1, StallFrac: 0.05,
	}
}

func memPhase() Params {
	return Params{
		Name: "mem", Instructions: 1e9,
		CPICore: 0.4, L2APKI: 150, MemAPKI: 130, MLP: 4, SpecFactor: 1.3, StallFrac: 0.1,
	}
}

func table() *pstate.Table { return pstate.PentiumM755() }

func TestValidateRejectsImplausibleParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"negative instructions", func(p *Params) { p.Instructions = -1 }},
		{"empty phase", func(p *Params) { p.Instructions = 0; p.IdleDuration = 0 }},
		{"zero core CPI", func(p *Params) { p.CPICore = 0 }},
		{"negative L2APKI", func(p *Params) { p.L2APKI = -1 }},
		{"negative MemBPI", func(p *Params) { p.MemBPI = -1 }},
		{"misses exceed accesses", func(p *Params) { p.MemAPKI = p.L2APKI + 1 }},
		{"MLP below one", func(p *Params) { p.MLP = 0.5 }},
		{"spec below one", func(p *Params) { p.SpecFactor = 0.9 }},
		{"stall above one", func(p *Params) { p.StallFrac = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := corePhase()
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", p)
			}
		})
	}
	if err := corePhase().Validate(); err != nil {
		t.Errorf("valid phase rejected: %v", err)
	}
	idle := Params{Name: "idle", IdleDuration: time.Second}
	if err := idle.Validate(); err != nil {
		t.Errorf("idle phase rejected: %v", err)
	}
}

func TestCoreBoundScalesWithFrequency(t *testing.T) {
	p := corePhase()
	tab := table()
	lo := p.At(tab.Min())
	hi := p.At(tab.Max())
	// Core-bound: IPC nearly frequency-independent, so performance
	// (IPC*f) scales close to linearly.
	if rel := hi.IPC / lo.IPC; rel < 0.97 || rel > 1.0 {
		t.Errorf("core-bound IPC ratio across frequencies = %g, want ~1", rel)
	}
}

func TestMemoryBoundInsensitiveToFrequency(t *testing.T) {
	p := memPhase()
	tab := table()
	loState, _ := tab.ByFreq(1600)
	hiState, _ := tab.ByFreq(2000)
	perfLo := p.At(loState).IPC * 1600
	perfHi := p.At(hiState).IPC * 2000
	// The paper's swim gains almost nothing from 1600 -> 2000.
	if gain := perfHi / perfLo; gain > 1.06 {
		t.Errorf("memory-bound perf gain 1600->2000 = %g, want < 1.06", gain)
	}
}

func TestDCUPerInstGrowsWithFrequencyForMemoryBound(t *testing.T) {
	p := memPhase()
	tab := table()
	lo := p.StallPerInst(tab.Min())
	hi := p.StallPerInst(tab.Max())
	if hi <= lo {
		t.Errorf("DCU/IPC did not grow with frequency: %g vs %g", lo, hi)
	}
}

func TestBandwidthBoundTakesOver(t *testing.T) {
	// Latency-light but traffic-heavy phase (prefetched streaming).
	p := Params{
		Name: "stream", Instructions: 1e9,
		CPICore: 0.5, L2APKI: 80, MemAPKI: 0, MemBPI: 8, MLP: 4, SpecFactor: 1.05,
	}
	ps := table().Max()
	b := p.At(ps)
	// 8 B/instr over 2.7 GB/s at 2 GHz ~= 5.93 cycles/instr floor.
	if b.CPI < 5 {
		t.Errorf("bandwidth-bound CPI = %g, want > 5", b.CPI)
	}
	// Bus traffic reflects total transfer, not just demand misses.
	if b.MemPC <= 0 {
		t.Error("bandwidth-bound phase shows no bus traffic")
	}
}

func TestBehaviorInvariants(t *testing.T) {
	tab := table()
	for _, p := range []Params{corePhase(), memPhase()} {
		for i := 0; i < tab.Len(); i++ {
			b := p.At(tab.At(i))
			if b.IPC <= 0 || b.CPI <= 0 {
				t.Fatalf("%s@%v: non-positive rates %+v", p.Name, tab.At(i), b)
			}
			if math.Abs(b.IPC*b.CPI-1) > 1e-9 {
				t.Errorf("%s@%v: IPC*CPI = %g", p.Name, tab.At(i), b.IPC*b.CPI)
			}
			if b.DCU < 0 || b.DCU > 0.98 {
				t.Errorf("%s@%v: DCU = %g out of range", p.Name, tab.At(i), b.DCU)
			}
			if b.DPC < b.IPC {
				t.Errorf("%s@%v: DPC %g below IPC %g", p.Name, tab.At(i), b.DPC, b.IPC)
			}
			if b.StallPC > 1 {
				t.Errorf("%s@%v: StallPC = %g", p.Name, tab.At(i), b.StallPC)
			}
		}
	}
}

func TestIdlePhaseBehavior(t *testing.T) {
	p := Params{Name: "idle", IdleDuration: 2 * time.Second}
	if !p.Idle() {
		t.Fatal("idle phase not idle")
	}
	if b := p.At(table().Max()); b != (Behavior{}) {
		t.Errorf("idle behavior = %+v, want zero", b)
	}
	if got := p.TimeAt(table().Max()); got != 2*time.Second {
		t.Errorf("idle TimeAt = %v, want 2s", got)
	}
	if p.StallPerInst(table().Max()) != 0 {
		t.Error("idle StallPerInst != 0")
	}
}

func TestTimeAtConsistentWithBehavior(t *testing.T) {
	p := corePhase()
	ps := table().Max()
	b := p.At(ps)
	want := p.Instructions * b.CPI / ps.FreqHz()
	got := p.TimeAt(ps).Seconds()
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("TimeAt = %gs, want %gs", got, want)
	}
}

func TestWorkloadValidate(t *testing.T) {
	w := Workload{Name: "w", Phases: []Params{corePhase()}}
	if err := w.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	if err := (Workload{Phases: []Params{corePhase()}}).Validate(); err == nil {
		t.Error("unnamed workload accepted")
	}
	if err := (Workload{Name: "w"}).Validate(); err == nil {
		t.Error("phase-less workload accepted")
	}
	bad := corePhase()
	bad.MLP = 0
	if err := (Workload{Name: "w", Phases: []Params{bad}}).Validate(); err == nil {
		t.Error("workload with invalid phase accepted")
	}
	if err := (Workload{Name: "w", Phases: []Params{corePhase()}, JitterPct: 0.9}).Validate(); err == nil {
		t.Error("excessive jitter accepted")
	}
}

func TestWorkloadTotals(t *testing.T) {
	w := Workload{
		Name:       "w",
		Phases:     []Params{corePhase(), memPhase()},
		Iterations: 3,
	}
	if got := w.Repeats(); got != 3 {
		t.Errorf("Repeats = %d", got)
	}
	if got, want := w.TotalInstructions(), 6e9; got != want {
		t.Errorf("TotalInstructions = %g, want %g", got, want)
	}
	ps := table().Max()
	perIter := corePhase().TimeAt(ps) + memPhase().TimeAt(ps)
	if got, want := w.TimeAt(ps), 3*perIter; got != want {
		t.Errorf("TimeAt = %v, want %v", got, want)
	}
	if (Workload{Name: "w", Phases: []Params{corePhase()}}).Repeats() != 1 {
		t.Error("zero Iterations should mean 1")
	}
}

func TestAvgIPCAt(t *testing.T) {
	w := Workload{Name: "w", Phases: []Params{corePhase()}}
	ps := table().Max()
	want := corePhase().At(ps).IPC
	if got := w.AvgIPCAt(ps); math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgIPCAt = %g, want %g", got, want)
	}
	idle := Workload{Name: "i", Phases: []Params{{Name: "z", IdleDuration: time.Second}}}
	if got := idle.AvgIPCAt(ps); got != 0 {
		t.Errorf("idle AvgIPCAt = %g, want 0", got)
	}
}

// Property: raising frequency never reduces performance (IPC*f) and
// never increases IPC for any valid phase.
func TestFrequencyMonotonicity(t *testing.T) {
	tab := table()
	f := func(cpi8, l2a8, mem8, mlp8, spec8 uint8) bool {
		p := Params{
			Name: "q", Instructions: 1e6,
			CPICore:    0.3 + float64(cpi8)/128,
			L2APKI:     float64(l2a8),
			MLP:        1 + float64(mlp8)/32,
			SpecFactor: 1 + float64(spec8)/256,
		}
		p.MemAPKI = math.Min(float64(mem8), p.L2APKI)
		if err := p.Validate(); err != nil {
			return true
		}
		prevPerf, prevIPC := 0.0, math.Inf(1)
		for i := 0; i < tab.Len(); i++ {
			b := p.At(tab.At(i))
			perf := b.IPC * float64(tab.At(i).FreqMHz)
			if perf < prevPerf-1e-9 || b.IPC > prevIPC+1e-9 {
				return false
			}
			prevPerf, prevIPC = perf, b.IPC
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
