package phase

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const sampleJSON = `{
  "name": "custom",
  "iterations": 3,
  "jitter_pct": 0.02,
  "phases": [
    {"name": "compute", "instructions": 2e9, "cpi_core": 0.6,
     "l2_apki": 20, "mem_apki": 2, "mem_bpi": 0.2,
     "mlp": 2, "spec_factor": 1.3, "stall_frac": 0.1},
    {"name": "wait", "idle_ms": 250}
  ]
}`

func TestParseWorkloadJSON(t *testing.T) {
	w, err := ParseWorkloadJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "custom" || w.Iterations != 3 || w.JitterPct != 0.02 {
		t.Errorf("workload header = %+v", w)
	}
	if len(w.Phases) != 2 {
		t.Fatalf("phases = %d", len(w.Phases))
	}
	p := w.Phases[0]
	if p.Instructions != 2e9 || p.CPICore != 0.6 || p.MLP != 2 || p.SpecFactor != 1.3 {
		t.Errorf("compute phase = %+v", p)
	}
	if got := w.Phases[1].IdleDuration; got != 250*time.Millisecond {
		t.Errorf("idle duration = %v", got)
	}
}

func TestParseWorkloadJSONDefaults(t *testing.T) {
	// MLP and SpecFactor default to 1 for busy phases.
	in := `{"name":"d","phases":[{"name":"p","instructions":1e6,"cpi_core":0.5}]}`
	w, err := ParseWorkloadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Phases[0].MLP != 1 || w.Phases[0].SpecFactor != 1 {
		t.Errorf("defaults not applied: %+v", w.Phases[0])
	}
}

func TestParseWorkloadJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"name":"x","bogus":1,"phases":[{"name":"p","instructions":1,"cpi_core":1}]}`,
		"no phases":      `{"name":"x","phases":[]}`,
		"no name":        `{"phases":[{"name":"p","instructions":1,"cpi_core":1}]}`,
		"invalid phase":  `{"name":"x","phases":[{"name":"p","instructions":1,"cpi_core":-1}]}`,
		"malformed json": `{"name":`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseWorkloadJSON(strings.NewReader(in)); err == nil {
				t.Errorf("accepted %s", in)
			}
		})
	}
}

func TestWorkloadJSONRoundTrip(t *testing.T) {
	orig, err := ParseWorkloadJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseWorkloadJSON(&buf)
	if err != nil {
		t.Fatalf("re-parsing emitted JSON: %v\n%s", err, buf.String())
	}
	if back.Name != orig.Name || len(back.Phases) != len(orig.Phases) {
		t.Fatalf("round trip changed shape: %+v", back)
	}
	for i := range orig.Phases {
		if back.Phases[i] != orig.Phases[i] {
			t.Errorf("phase %d: %+v != %+v", i, back.Phases[i], orig.Phases[i])
		}
	}
}
