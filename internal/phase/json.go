package phase

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSON workload definitions let users run custom workloads without
// recompiling (cmd/aapm-run -workload-file). The schema uses explicit
// units rather than Go-native encodings:
//
//	{
//	  "name": "custom",
//	  "iterations": 10,
//	  "jitter_pct": 0.03,
//	  "phases": [
//	    {"name": "compute", "instructions": 2e9, "cpi_core": 0.6,
//	     "l2_apki": 20, "mem_apki": 2, "mem_bpi": 0.2,
//	     "mlp": 2, "spec_factor": 1.3, "stall_frac": 0.1},
//	    {"name": "wait", "idle_ms": 250}
//	  ]
//	}

type workloadJSON struct {
	Name       string      `json:"name"`
	Iterations int         `json:"iterations,omitempty"`
	JitterPct  float64     `json:"jitter_pct,omitempty"`
	Phases     []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Name         string  `json:"name"`
	Instructions float64 `json:"instructions,omitempty"`
	IdleMs       float64 `json:"idle_ms,omitempty"`
	CPICore      float64 `json:"cpi_core,omitempty"`
	L2APKI       float64 `json:"l2_apki,omitempty"`
	MemAPKI      float64 `json:"mem_apki,omitempty"`
	MemBPI       float64 `json:"mem_bpi,omitempty"`
	MLP          float64 `json:"mlp,omitempty"`
	SpecFactor   float64 `json:"spec_factor,omitempty"`
	StallFrac    float64 `json:"stall_frac,omitempty"`
}

// ParseWorkloadJSON decodes and validates a workload definition.
// Busy phases default MLP and SpecFactor to 1 when omitted.
func ParseWorkloadJSON(r io.Reader) (Workload, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var wj workloadJSON
	if err := dec.Decode(&wj); err != nil {
		return Workload{}, fmt.Errorf("phase: parsing workload JSON: %w", err)
	}
	w := Workload{
		Name:       wj.Name,
		Iterations: wj.Iterations,
		JitterPct:  wj.JitterPct,
	}
	for _, pj := range wj.Phases {
		p := Params{
			Name:         pj.Name,
			Instructions: pj.Instructions,
			IdleDuration: time.Duration(pj.IdleMs * float64(time.Millisecond)),
			CPICore:      pj.CPICore,
			L2APKI:       pj.L2APKI,
			MemAPKI:      pj.MemAPKI,
			MemBPI:       pj.MemBPI,
			MLP:          pj.MLP,
			SpecFactor:   pj.SpecFactor,
			StallFrac:    pj.StallFrac,
		}
		if !p.Idle() {
			if p.MLP == 0 {
				p.MLP = 1
			}
			if p.SpecFactor == 0 {
				p.SpecFactor = 1
			}
		}
		w.Phases = append(w.Phases, p)
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// WriteJSON encodes the workload in the schema ParseWorkloadJSON
// accepts.
func (w Workload) WriteJSON(out io.Writer) error {
	wj := workloadJSON{
		Name:       w.Name,
		Iterations: w.Iterations,
		JitterPct:  w.JitterPct,
	}
	for _, p := range w.Phases {
		wj.Phases = append(wj.Phases, phaseJSON{
			Name:         p.Name,
			Instructions: p.Instructions,
			IdleMs:       float64(p.IdleDuration) / float64(time.Millisecond),
			CPICore:      p.CPICore,
			L2APKI:       p.L2APKI,
			MemAPKI:      p.MemAPKI,
			MemBPI:       p.MemBPI,
			MLP:          p.MLP,
			SpecFactor:   p.SpecFactor,
			StallFrac:    p.StallFrac,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(wj)
}
