// Package phase defines the analytic workload descriptor the simulated
// platform executes.
//
// A workload is a sequence of phases. Each phase is characterized by a
// small set of frequency-independent architectural parameters (core
// CPI, cache/memory access intensities, memory-level parallelism,
// speculation factor). From those parameters the package evaluates, in
// closed form, the behaviour at any p-state: IPC, decode rate, data
// cache stall occupancy, L2/bus traffic. The key physics:
//
//   - Core execution and on-chip (L1/L2) latencies cost a fixed number
//     of cycles per instruction, so their wall-clock cost scales with
//     1/f — core-bound phases speed up linearly with frequency.
//   - DRAM latency is fixed wall-clock time, so its cost in cycles
//     grows with f — memory-bound phases gain little from frequency.
//
// This is exactly the dichotomy the paper's Figure 2 shows (sixtrack
// vs swim) and the reason its performance model classifies on DCU/IPC.
package phase

import (
	"fmt"
	"time"

	"aapm/internal/pstate"
)

// Machine timing constants of the simulated Pentium M memory hierarchy.
const (
	// L2LatencyCycles is the L2 hit latency in core cycles. On-chip,
	// so constant in cycles across p-states.
	L2LatencyCycles = 10.0
	// MemLatencyNs is the DRAM access latency in nanoseconds, constant
	// in wall-clock time across p-states.
	MemLatencyNs = 90.0
	// MemBandwidthGBs is the sustained DRAM bandwidth. Streaming
	// phases whose traffic outruns it are bandwidth-bound: their
	// per-instruction memory time is traffic/bandwidth even when
	// prefetching hides the latency.
	MemBandwidthGBs = 2.7
)

// Params describes one execution phase.
type Params struct {
	// Name labels the phase for traces.
	Name string
	// Instructions is the number of instructions the phase retires.
	// A phase with zero instructions and a positive IdleDuration is an
	// idle period (the processor halts; only base power is drawn).
	Instructions float64
	// IdleDuration is the wall-clock length of an idle phase. Ignored
	// when Instructions > 0.
	IdleDuration time.Duration
	// CPICore is cycles per instruction assuming all memory references
	// hit in the L1 data cache. Frequency independent.
	CPICore float64
	// L2APKI is L2 accesses (L1 data misses) per kilo-instruction.
	L2APKI float64
	// MemAPKI is DRAM (bus) accesses per kilo-instruction on the
	// demand path (latency-critical misses).
	MemAPKI float64
	// MemBPI is total DRAM traffic in bytes per instruction including
	// prefetch and writeback transfers; it bounds throughput via the
	// bandwidth ceiling even when prefetching hides latency.
	MemBPI float64
	// MLP is the memory-level parallelism: how many outstanding misses
	// overlap on average, dividing the effective stall latency. >= 1.
	MLP float64
	// SpecFactor is decoded instructions per retired instruction
	// (speculative wrong-path and refused work), >= 1.
	SpecFactor float64
	// StallFrac is the baseline resource-stall occupancy independent
	// of data-cache misses (0..1).
	StallFrac float64
}

// Validate reports the first implausible parameter, if any.
func (p Params) Validate() error {
	switch {
	case p.Instructions < 0:
		return fmt.Errorf("phase %q: negative instructions", p.Name)
	case p.Instructions == 0 && p.IdleDuration <= 0:
		return fmt.Errorf("phase %q: empty phase (no instructions, no idle duration)", p.Name)
	case p.Instructions > 0 && p.CPICore <= 0:
		return fmt.Errorf("phase %q: CPICore must be positive", p.Name)
	case p.L2APKI < 0 || p.MemAPKI < 0 || p.MemBPI < 0:
		return fmt.Errorf("phase %q: negative access intensity", p.Name)
	case p.MemAPKI > p.L2APKI+1e-9 && p.L2APKI > 0:
		return fmt.Errorf("phase %q: MemAPKI %g exceeds L2APKI %g (misses cannot exceed accesses)", p.Name, p.MemAPKI, p.L2APKI)
	case p.Instructions > 0 && p.MLP < 1:
		return fmt.Errorf("phase %q: MLP must be >= 1", p.Name)
	case p.Instructions > 0 && p.SpecFactor < 1:
		return fmt.Errorf("phase %q: SpecFactor must be >= 1", p.Name)
	case p.StallFrac < 0 || p.StallFrac > 1:
		return fmt.Errorf("phase %q: StallFrac outside [0,1]", p.Name)
	}
	return nil
}

// Idle reports whether the phase is an idle (halted) period.
func (p Params) Idle() bool { return p.Instructions == 0 }

// Behavior is the closed-form per-cycle behaviour of a phase at one
// p-state.
type Behavior struct {
	// CPI is total cycles per retired instruction.
	CPI float64
	// IPC is retired instructions per cycle (1/CPI).
	IPC float64
	// DPC is decoded instructions per cycle.
	DPC float64
	// DCU is the DCU-miss-outstanding cycle occupancy (0..1).
	DCU float64
	// L2PC and MemPC are L2/bus requests per cycle.
	L2PC, MemPC float64
	// StallPC is resource-stall cycles per cycle.
	StallPC float64
}

// At evaluates the phase at p-state ps. Idle phases return a zero
// Behavior (no activity).
func (p Params) At(ps pstate.PState) Behavior {
	if p.Idle() {
		return Behavior{}
	}
	memLatCycles := MemLatencyNs * float64(ps.FreqMHz) / 1000.0
	l2Stall := p.L2APKI / 1000.0 * L2LatencyCycles / p.MLP
	memStall := p.MemAPKI / 1000.0 * memLatCycles / p.MLP
	// Bandwidth bound: bytes/instr over GB/s gives ns/instr, times f
	// gives cycles/instr. Takes over from the latency path when the
	// stream outruns DRAM.
	if bw := p.MemBPI / MemBandwidthGBs * float64(ps.FreqMHz) / 1000.0; bw > memStall {
		memStall = bw
	}
	cpi := p.CPICore + l2Stall + memStall
	ipc := 1.0 / cpi
	stallPerInst := l2Stall + memStall
	dcu := stallPerInst / cpi // fraction of cycles with a miss outstanding
	if dcu > 0.98 {
		dcu = 0.98
	}
	stall := p.StallFrac + 0.3*dcu
	if stall > 1 {
		stall = 1
	}
	// Bus requests per instruction: demand misses, or total traffic in
	// lines when prefetch/writeback streams dominate.
	memRPI := p.MemAPKI / 1000.0
	if lines := p.MemBPI / 64.0; lines > memRPI {
		memRPI = lines
	}
	return Behavior{
		CPI:     cpi,
		IPC:     ipc,
		DPC:     p.SpecFactor * ipc,
		DCU:     dcu,
		L2PC:    p.L2APKI / 1000.0 * ipc,
		MemPC:   memRPI * ipc,
		StallPC: stall,
	}
}

// StallPerInst returns DCU-outstanding cycles per retired instruction
// at p-state ps — the paper's DCU/IPC memory-boundedness measure.
func (p Params) StallPerInst(ps pstate.PState) float64 {
	if p.Idle() {
		return 0
	}
	b := p.At(ps)
	return b.DCU / b.IPC
}

// TimeAt returns the wall-clock duration of the whole phase at ps.
func (p Params) TimeAt(ps pstate.PState) time.Duration {
	if p.Idle() {
		return p.IdleDuration
	}
	cycles := p.Instructions * p.At(ps).CPI
	return time.Duration(cycles / ps.FreqHz() * float64(time.Second))
}

// Workload is a named sequence of phases, optionally repeated.
type Workload struct {
	// Name identifies the workload (e.g. "swim").
	Name string
	// Phases execute in order; the whole list repeats Iterations times.
	Phases []Params
	// Iterations is the repeat count for the phase list; 0 means 1.
	Iterations int
	// JitterPct is the relative amplitude of per-interval activity
	// jitter the platform applies (0 = perfectly stable, as for the
	// MS-Loops microbenchmarks; bursty workloads such as galgel use
	// larger values).
	JitterPct float64
}

// Validate checks every phase.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload has no name")
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("workload %q has no phases", w.Name)
	}
	for _, p := range w.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workload %q: %w", w.Name, err)
		}
	}
	if w.JitterPct < 0 || w.JitterPct > 0.5 {
		return fmt.Errorf("workload %q: JitterPct %g outside [0,0.5]", w.Name, w.JitterPct)
	}
	return nil
}

// Repeats returns the effective iteration count (at least 1).
func (w Workload) Repeats() int {
	if w.Iterations < 1 {
		return 1
	}
	return w.Iterations
}

// TotalInstructions returns the instructions retired by a full run.
func (w Workload) TotalInstructions() float64 {
	var per float64
	for _, p := range w.Phases {
		per += p.Instructions
	}
	return per * float64(w.Repeats())
}

// TimeAt returns the full-run duration at a fixed p-state.
func (w Workload) TimeAt(ps pstate.PState) time.Duration {
	var per time.Duration
	for _, p := range w.Phases {
		per += p.TimeAt(ps)
	}
	return per * time.Duration(w.Repeats())
}

// AvgIPCAt returns the run-average IPC at a fixed p-state
// (instructions divided by total cycles, idle phases excluded from
// cycles only if the whole workload is non-idle).
func (w Workload) AvgIPCAt(ps pstate.PState) float64 {
	var instr, cycles float64
	for _, p := range w.Phases {
		if p.Idle() {
			cycles += ps.FreqHz() * p.IdleDuration.Seconds()
			continue
		}
		instr += p.Instructions
		cycles += p.Instructions * p.At(ps).CPI
	}
	if cycles == 0 {
		return 0
	}
	return instr / cycles
}
