package phase

import (
	"strings"
	"testing"
)

// FuzzParseWorkloadJSON checks the parser never panics and that every
// accepted workload validates (the parser's contract).
func FuzzParseWorkloadJSON(f *testing.F) {
	f.Add(sampleJSON)
	f.Add(`{"name":"d","phases":[{"name":"p","instructions":1e6,"cpi_core":0.5}]}`)
	f.Add(`{"name":"idle","phases":[{"name":"z","idle_ms":100}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"name":"x","phases":[{"name":"p","instructions":-1}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		w, err := ParseWorkloadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("parser accepted a workload that fails validation: %v\ninput: %s", verr, in)
		}
	})
}
