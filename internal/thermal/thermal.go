// Package thermal models the processor's die temperature as a
// first-order RC network — the standard lumped model behind on-die
// thermal management (the paper's introduction places thermal concerns
// alongside power; Intel's Foxton, discussed in §II, closes the loop
// on both).
//
// Physics: a thermal capacitance C (J/°C) charges through the package
// thermal resistance R (°C/W) toward the ambient:
//
//	C * dT/dt = P - (T - Tamb)/R
//
// so a constant power P settles at Tamb + R*P with time constant R*C.
// The machine steps the model with true power each interval; policies
// observe a quantized digital thermal sensor reading.
package thermal

import (
	"fmt"
	"math"
	"time"
)

// Config describes the package's thermal path.
type Config struct {
	// AmbientC is the local ambient (inside-chassis) temperature.
	AmbientC float64
	// ResistanceCW is junction-to-ambient thermal resistance in °C/W.
	ResistanceCW float64
	// CapacitanceJC is the lumped thermal capacitance in J/°C.
	CapacitanceJC float64
	// InitialC is the die temperature at reset; 0 selects ambient.
	InitialC float64
	// SensorStepC is the digital thermal sensor quantization; 0
	// selects 0.5 °C.
	SensorStepC float64
}

// PentiumMThermal returns a thermal path representative of the paper's
// platform class: ~45 °C chassis ambient, 1.9 °C/W junction-to-ambient
// (the 2 GHz worst-case workload settles a few degrees above a 75 °C
// limit) and a ~4 s die+spreader time constant, so sustained hot
// workloads cross the limit within seconds.
func PentiumMThermal() Config {
	return Config{
		AmbientC:      45,
		ResistanceCW:  1.9,
		CapacitanceJC: 2,
		SensorStepC:   0.5,
	}
}

// Validate reports implausible parameters.
func (c Config) Validate() error {
	switch {
	case c.ResistanceCW <= 0:
		return fmt.Errorf("thermal: non-positive resistance %g", c.ResistanceCW)
	case c.CapacitanceJC <= 0:
		return fmt.Errorf("thermal: non-positive capacitance %g", c.CapacitanceJC)
	case c.AmbientC < -60 || c.AmbientC > 120:
		return fmt.Errorf("thermal: implausible ambient %g°C", c.AmbientC)
	case c.SensorStepC < 0:
		return fmt.Errorf("thermal: negative sensor step")
	}
	return nil
}

// TimeConstant returns R*C.
func (c Config) TimeConstant() time.Duration {
	return time.Duration(c.ResistanceCW * c.CapacitanceJC * float64(time.Second))
}

// SteadyC returns the settling temperature under constant power.
func (c Config) SteadyC(powerW float64) float64 {
	return c.AmbientC + c.ResistanceCW*powerW
}

// PowerForC inverts SteadyC: the sustained power that settles at the
// given temperature. Negative results clamp to zero (the limit is
// below ambient).
func (c Config) PowerForC(tempC float64) float64 {
	p := (tempC - c.AmbientC) / c.ResistanceCW
	if p < 0 {
		p = 0
	}
	return p
}

// Model is the die temperature integrator.
type Model struct {
	cfg   Config
	tempC float64
}

// New validates cfg and returns a model at the initial temperature.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := cfg.InitialC
	if t == 0 {
		t = cfg.AmbientC
	}
	if cfg.SensorStepC == 0 {
		cfg.SensorStepC = 0.5
	}
	return &Model{cfg: cfg, tempC: t}, nil
}

// Config returns the model's thermal path.
func (m *Model) Config() Config { return m.cfg }

// TempC returns the exact die temperature.
func (m *Model) TempC() float64 { return m.tempC }

// SensorC returns the quantized digital-thermal-sensor reading.
func (m *Model) SensorC() float64 {
	s := m.cfg.SensorStepC
	return math.Floor(m.tempC/s) * s
}

// Step integrates the model over dt under the given power and returns
// the new exact temperature. It uses the closed-form exponential
// response, so large steps remain stable.
func (m *Model) Step(powerW float64, dt time.Duration) float64 {
	if dt <= 0 {
		return m.tempC
	}
	target := m.cfg.SteadyC(powerW)
	tau := m.cfg.ResistanceCW * m.cfg.CapacitanceJC
	k := math.Exp(-dt.Seconds() / tau)
	m.tempC = target + (m.tempC-target)*k
	return m.tempC
}
