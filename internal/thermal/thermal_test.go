package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConfigValidation(t *testing.T) {
	if err := PentiumMThermal().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{AmbientC: 45, ResistanceCW: 0, CapacitanceJC: 7},
		{AmbientC: 45, ResistanceCW: 1.7, CapacitanceJC: 0},
		{AmbientC: 200, ResistanceCW: 1.7, CapacitanceJC: 7},
		{AmbientC: 45, ResistanceCW: 1.7, CapacitanceJC: 7, SensorStepC: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted %+v", c)
		}
	}
}

func TestSteadyStateInversion(t *testing.T) {
	c := PentiumMThermal()
	if got := c.SteadyC(10); got != 45+19 {
		t.Errorf("SteadyC(10) = %g, want 64", got)
	}
	if got := c.PowerForC(64); math.Abs(got-10) > 1e-12 {
		t.Errorf("PowerForC(64) = %g, want 10", got)
	}
	if got := c.PowerForC(40); got != 0 {
		t.Errorf("PowerForC below ambient = %g, want clamped 0", got)
	}
}

func TestTimeConstant(t *testing.T) {
	c := Config{AmbientC: 45, ResistanceCW: 2, CapacitanceJC: 5}
	if got := c.TimeConstant(); got != 10*time.Second {
		t.Errorf("TimeConstant = %v, want 10s", got)
	}
}

func TestModelStartsAtAmbient(t *testing.T) {
	m, err := New(PentiumMThermal())
	if err != nil {
		t.Fatal(err)
	}
	if m.TempC() != 45 {
		t.Errorf("initial temp = %g, want ambient 45", m.TempC())
	}
	m2, _ := New(Config{AmbientC: 45, ResistanceCW: 1.7, CapacitanceJC: 7, InitialC: 60})
	if m2.TempC() != 60 {
		t.Errorf("explicit initial temp = %g", m2.TempC())
	}
}

func TestStepConvergesToSteadyState(t *testing.T) {
	m, _ := New(PentiumMThermal())
	want := m.Config().SteadyC(15)
	for i := 0; i < 20000; i++ {
		m.Step(15, 10*time.Millisecond)
	}
	if math.Abs(m.TempC()-want) > 0.01 {
		t.Errorf("temp after long run = %g, want steady %g", m.TempC(), want)
	}
}

func TestStepExponentialResponse(t *testing.T) {
	m, _ := New(PentiumMThermal())
	tau := m.Config().TimeConstant()
	m.Step(15, tau) // one time constant: ~63.2% of the way
	want := 45 + (m.Config().SteadyC(15)-45)*(1-math.Exp(-1))
	if math.Abs(m.TempC()-want) > 1e-9 {
		t.Errorf("temp after 1 tau = %g, want %g", m.TempC(), want)
	}
}

func TestStepLargeDtStable(t *testing.T) {
	m, _ := New(PentiumMThermal())
	// A huge step must land exactly at steady state, never overshoot
	// (the closed form is unconditionally stable).
	m.Step(15, time.Hour)
	if math.Abs(m.TempC()-m.Config().SteadyC(15)) > 1e-9 {
		t.Errorf("temp after 1h = %g", m.TempC())
	}
	m.Step(0, time.Hour)
	if math.Abs(m.TempC()-45) > 1e-9 {
		t.Errorf("cooldown temp = %g, want ambient", m.TempC())
	}
}

func TestStepZeroDt(t *testing.T) {
	m, _ := New(PentiumMThermal())
	before := m.TempC()
	if got := m.Step(100, 0); got != before {
		t.Errorf("zero-dt step changed temp to %g", got)
	}
}

func TestSensorQuantization(t *testing.T) {
	m, _ := New(Config{AmbientC: 45, ResistanceCW: 1.7, CapacitanceJC: 7, InitialC: 61.7, SensorStepC: 0.5})
	if got := m.SensorC(); got != 61.5 {
		t.Errorf("SensorC = %g, want 61.5", got)
	}
}

// Property: temperature always stays between the initial value and the
// steady-state target (monotone approach, no overshoot).
func TestNoOvershoot(t *testing.T) {
	f := func(p8 uint8, steps uint8) bool {
		m, err := New(PentiumMThermal())
		if err != nil {
			return false
		}
		p := float64(p8) / 10 // 0..25.5 W
		target := m.Config().SteadyC(p)
		lo, hi := 45.0, target
		if lo > hi {
			lo, hi = hi, lo
		}
		for i := 0; i < int(steps); i++ {
			temp := m.Step(p, 10*time.Millisecond)
			if temp < lo-1e-9 || temp > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
