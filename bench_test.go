package aapm

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out and micro-benches for the simulator hot paths.
//
// Each figure/table benchmark rebuilds a fresh experiment context per
// iteration (the context caches runs, so reusing one would measure a
// map lookup) and reports the experiment's headline quantity via
// b.ReportMetric so regressions in the reproduced numbers are visible
// in benchmark output.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"aapm/internal/control"
	"aapm/internal/counters"
	"aapm/internal/experiment"
	"aapm/internal/kernel"
	"aapm/internal/machine"
	"aapm/internal/metrics"
	"aapm/internal/mloops"
	"aapm/internal/model"
	"aapm/internal/sensor"
	"aapm/internal/spec"
	"aapm/internal/telemetry"
	"aapm/internal/trace"
)

func newBenchHierarchy() (*kernel.Hierarchy, error) { return kernel.NewPentiumMHierarchy() }

// benchCtx builds a fresh full-length experiment context.
func benchCtx(b *testing.B) *experiment.Context {
	b.Helper()
	c, err := experiment.NewContext(experiment.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

type printable interface{ Print(io.Writer) error }

// emit prints the experiment output once (first iteration only) so a
// -bench run regenerates the actual tables.
func emit(b *testing.B, i int, r printable) {
	b.Helper()
	if i != 0 || !testing.Verbose() {
		return
	}
	if err := r.Print(benchWriter{b}); err != nil {
		b.Fatal(err)
	}
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

func BenchmarkFig1PowerVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).Fig1PowerVariation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RangeFrac*100, "range-%of-peak")
		emit(b, i, r)
	}
}

func BenchmarkFig2PstatePerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).Fig2PstatePerformance()
		if err != nil {
			b.Fatal(err)
		}
		// swim's relative performance at 1600 MHz (paper: ~1).
		b.ReportMetric(r.Rows[0].RelPerf[0], "swim-rel@1600")
		emit(b, i, r)
	}
}

func BenchmarkTableIMicrobenchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).TableIMicrobenchmarks()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Rows)), "configs")
		emit(b, i, r)
	}
}

func BenchmarkTableIIPowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).TableIIPowerModel()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanAbsErrW, "train-MAE-W")
		b.ReportMetric(r.PerfFit.Best.Exponent, "eq3-exponent")
		emit(b, i, r)
	}
}

func BenchmarkTableIIIWorstCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).TableIIIWorstCase()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[len(r.Rows)-1].PowerW, "FMA256K@2GHz-W")
		emit(b, i, r)
	}
}

func BenchmarkTableIVStaticFrequencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).TableIVStaticFrequencies()
		if err != nil {
			b.Fatal(err)
		}
		match := 0
		for _, row := range r.Rows {
			if row.FreqMHz == row.PaperMHz {
				match++
			}
		}
		b.ReportMetric(float64(match), "rows-matching-paper")
		emit(b, i, r)
	}
}

func BenchmarkFig5PMTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).Fig5PMTimeline()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PM145.AvgPowerW(), "ammp@14.5W-avgW")
		emit(b, i, r)
	}
}

func BenchmarkFig6PerfVsPowerLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).Fig6PerfVsPowerLimit()
		if err != nil {
			b.Fatal(err)
		}
		// Dynamic-over-static advantage at the tightest limit.
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.NormPerfPM-last.NormPerfStatic, "pm-advantage@10.5W")
		emit(b, i, r)
	}
}

func BenchmarkFig7PMSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).Fig7PMSpeedup()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FractionOfPossible*100, "%of-possible-speedup")
		emit(b, i, r)
	}
}

func BenchmarkPMLimitAdherence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).PMLimitAdherence()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Worst.OverFrac*100, "worst-%overlimit")
		emit(b, i, r)
	}
}

func BenchmarkFig8PSTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).Fig8PSTimeline()
		if err != nil {
			b.Fatal(err)
		}
		save := 1 - r.PS80.MeasuredEnergyJ/r.Unconstrained.MeasuredEnergyJ
		b.ReportMetric(save*100, "ammp-%savings@80")
		emit(b, i, r)
	}
}

func BenchmarkFig9PSSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).Fig9PSSuite()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].EnergySavings*100, "suite-%savings@80")
		b.ReportMetric(r.Rows[1].PerfReduction*100, "suite-%loss@60")
		emit(b, i, r)
	}
}

func BenchmarkFig10EnergySavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).Fig10EnergySavings()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].At600*100, "top-saver-%@600MHz")
		emit(b, i, r)
	}
}

func BenchmarkFig11PerfReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).Fig11PerfReduction()
		if err != nil {
			b.Fatal(err)
		}
		var art81, art59 float64
		for _, v := range r.Violations {
			if v.Name == "art" && v.Floor == 0.80 {
				art81, art59 = v.Reduction081*100, v.Reduction059*100
			}
		}
		b.ReportMetric(art81, "art-%loss@80-e081")
		b.ReportMetric(art59, "art-%loss@80-e059")
		emit(b, i, r)
	}
}

// --- ablation benches ---

// ablationRun executes one workload under a PM variant and returns the
// over-limit sample fraction and performance normalized to 2 GHz.
func ablationRun(b *testing.B, name string, limit float64, cfg control.PMConfig, period time.Duration) (overFrac, normPerf float64) {
	b.Helper()
	w, err := spec.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	mk := func() *machine.Machine {
		m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: 7, SamplePeriod: period})
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	base, err := mk().Run(w, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg.LimitW = limit
	pm, err := control.NewPerformanceMaximizer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	run, err := mk().Run(w, pm)
	if err != nil {
		b.Fatal(err)
	}
	return trace.FractionAbove(run.MeasuredPowers(), limit),
		base.Duration.Seconds() / run.Duration.Seconds()
}

// BenchmarkAblationPMHysteresis compares the paper's 100 ms up-shift
// hysteresis with an eager single-sample policy on the bursty galgel.
func BenchmarkAblationPMHysteresis(b *testing.B) {
	for _, ticks := range []int{1, 5, 10, 20} {
		b.Run(fmt.Sprintf("raiseTicks=%d", ticks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				over, perf := ablationRun(b, "galgel", 13.5,
					control.PMConfig{RaiseTicks: ticks}, 0)
				b.ReportMetric(over*100, "%overlimit")
				b.ReportMetric(perf*100, "%of-2GHz-perf")
			}
		})
	}
}

// BenchmarkAblationPMGuardband sweeps the estimation guardband.
func BenchmarkAblationPMGuardband(b *testing.B) {
	for _, gb := range []float64{-1, 0.5, 1.0} {
		label := fmt.Sprintf("guardband=%.1fW", gb)
		if gb < 0 {
			label = "guardband=off"
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				over, perf := ablationRun(b, "galgel", 13.5,
					control.PMConfig{GuardbandW: gb}, 0)
				b.ReportMetric(over*100, "%overlimit")
				b.ReportMetric(perf*100, "%of-2GHz-perf")
			}
		})
	}
}

// BenchmarkAblationDPCProjection compares eq. 4's conservative decode
// projection against estimating every state at the observed rate, on a
// memory-bound workload where the projection matters most.
func BenchmarkAblationDPCProjection(b *testing.B) {
	for _, off := range []bool{false, true} {
		label := "eq4-projection"
		if off {
			label = "no-projection"
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				over, perf := ablationRun(b, "mcf", 10.5,
					control.PMConfig{DisableDPCProjection: off}, 0)
				b.ReportMetric(over*100, "%overlimit")
				b.ReportMetric(perf*100, "%of-2GHz-perf")
			}
		})
	}
}

// BenchmarkAblationSamplePeriod varies the monitoring interval around
// the paper's 10 ms.
func BenchmarkAblationSamplePeriod(b *testing.B) {
	for _, period := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond} {
		b.Run(period.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				over, perf := ablationRun(b, "galgel", 13.5, control.PMConfig{}, period)
				b.ReportMetric(over*100, "%overlimit")
				b.ReportMetric(perf*100, "%of-2GHz-perf")
			}
		})
	}
}

// BenchmarkAblationPSExponent contrasts the two eq. 3 local minima on
// the paper's violating workloads.
func BenchmarkAblationPSExponent(b *testing.B) {
	for _, e := range []float64{model.PaperExponent, model.PaperExponentAlt} {
		b.Run(fmt.Sprintf("exponent=%.2f", e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var worst float64
				for _, n := range []string{"art", "mcf"} {
					w, err := spec.ByName(n)
					if err != nil {
						b.Fatal(err)
					}
					m, err := machine.New(machine.Config{Seed: 7})
					if err != nil {
						b.Fatal(err)
					}
					base, err := m.Run(w, nil)
					if err != nil {
						b.Fatal(err)
					}
					ps, err := control.NewPowerSave(control.PSConfig{
						Floor: 0.8,
						Perf:  model.PerfModel{Threshold: model.PaperDCUThreshold, Exponent: e},
					})
					if err != nil {
						b.Fatal(err)
					}
					run, err := m.Run(w, ps)
					if err != nil {
						b.Fatal(err)
					}
					if loss := 1 - base.Duration.Seconds()/run.Duration.Seconds(); loss > worst {
						worst = loss
					}
				}
				b.ReportMetric(worst*100, "worst-%loss@80floor")
			}
		})
	}
}

// --- simulator micro-benches ---

// BenchmarkMachineTick measures the per-interval simulation cost.
func BenchmarkMachineTick(b *testing.B) {
	w, err := spec.ByName("ammp")
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	ticks := 0
	for ticks < b.N {
		run, err := m.Run(w, nil)
		if err != nil {
			b.Fatal(err)
		}
		ticks += len(run.Rows)
	}
}

// BenchmarkStagedTick measures the same per-interval cost with the
// staged engine driven by hand — a metrics collector subscribed and
// sessions stepped manually — to pin the hook bus overhead against
// BenchmarkMachineTick (budget: ≤5%).
func BenchmarkStagedTick(b *testing.B) {
	w, err := spec.ByName("ammp")
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	ticks := 0
	for ticks < b.N {
		s, err := m.NewSession(w, nil)
		if err != nil {
			b.Fatal(err)
		}
		col := &metrics.Collector{}
		s.Subscribe(col)
		for {
			done, err := s.Step()
			if err != nil {
				b.Fatal(err)
			}
			if done {
				break
			}
		}
		s.Result()
		ticks += col.Ticks
	}
}

// BenchmarkTelemetryOff measures the per-interval cost with the
// telemetry layer compiled in but no subscriber attached — the
// partner of BenchmarkStagedTick for the ≤5% self-observation budget
// (asserted by TestTelemetryOffOverhead).
func BenchmarkTelemetryOff(b *testing.B) {
	w, err := spec.ByName("ammp")
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	ticks := 0
	for ticks < b.N {
		s, err := m.NewSession(w, nil)
		if err != nil {
			b.Fatal(err)
		}
		for {
			done, err := s.Step()
			if err != nil {
				b.Fatal(err)
			}
			if done {
				break
			}
		}
		ticks += len(s.Result().Rows)
	}
}

// BenchmarkTelemetryOn measures the per-interval cost with a registry
// observer subscribed — what a scraped run actually pays.
func BenchmarkTelemetryOn(b *testing.B) {
	w, err := spec.ByName("ammp")
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	b.ResetTimer()
	ticks := 0
	for ticks < b.N {
		s, err := m.NewSession(w, nil)
		if err != nil {
			b.Fatal(err)
		}
		s.Subscribe(telemetry.NewObserver(reg, "bench", "none"))
		for {
			done, err := s.Step()
			if err != nil {
				b.Fatal(err)
			}
			if done {
				break
			}
		}
		ticks += len(s.Result().Rows)
	}
}

// BenchmarkBatchTick measures the batch kernel's cost per node-tick on
// its specialized PM path: the cluster benchmark's eight-node mix (NI
// chain, per-node PM at the same 13 W share) stepped as one BatchState
// with trace retention off — the telemetry-off, faults-off hot path
// the zero-allocation gate (TestBatchTickAllocs) pins. Compare ns/op
// here against BenchmarkClusterTick's ns/step divided by its node
// count; `make tick-bench` records the ratio in BENCH_tick.json.
func BenchmarkBatchTick(b *testing.B) {
	names := []string{"swim", "mcf", "lucas", "crafty", "gzip", "gcc", "art", "ammp"}
	build := func() *kernel.BatchState {
		nodes := make([]kernel.BatchNode, len(names))
		for i, name := range names {
			w, err := spec.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			// Full-length workloads so per-build setup (RNG seeding,
			// behaviour caches) amortizes over tens of thousands of
			// ticks, as it does in a real experiment run.
			w.Iterations = w.Repeats()
			m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: 7 + int64(i)*7919})
			if err != nil {
				b.Fatal(err)
			}
			pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 13, FeedbackGain: 0.25})
			if err != nil {
				b.Fatal(err)
			}
			nodes[i] = kernel.BatchNode{Machine: m, Workload: w, Governor: pm}
		}
		bs, err := kernel.NewBatch(nodes, kernel.BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if bs.Kind() != "pm" {
			b.Fatalf("expected the pm fast path, got %q", bs.Kind())
		}
		return bs
	}
	b.ReportAllocs()
	b.ResetTimer()
	ticks := 0
	for ticks < b.N {
		bs := build()
		if err := bs.Run(); err != nil {
			b.Fatal(err)
		}
		for i := range names {
			ticks += bs.Ticks(i)
		}
	}
}

// BenchmarkCacheAccess measures the cache model's lookup cost.
func BenchmarkCacheAccess(b *testing.B) {
	g := mloops.NewGenerator(mloops.DAXPY, mloops.FootprintL2)
	h, err := newBenchHierarchy()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := g.Next()
		for _, r := range op.Refs {
			h.Access(r.Addr, r.Write)
		}
	}
}

// BenchmarkPMTick measures the PM decision cost per 10 ms interval.
func BenchmarkPMTick(b *testing.B) {
	pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 13.5})
	if err != nil {
		b.Fatal(err)
	}
	info := benchTickInfo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm.Tick(info)
	}
}

// BenchmarkPSTick measures the PS decision cost per 10 ms interval.
func BenchmarkPSTick(b *testing.B) {
	ps, err := control.NewPowerSave(control.PSConfig{Floor: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	info := benchTickInfo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Tick(info)
	}
}

func benchTickInfo() machine.TickInfo {
	tab := PentiumM755()
	var s counters.Sample
	s.SetCount(counters.Cycles, 20_000_000)
	s.SetCount(counters.InstDecoded, 24_000_000)
	s.SetCount(counters.InstRetired, 20_000_000)
	s.SetCount(counters.DCUMissOutstanding, 5_000_000)
	return machine.TickInfo{
		Now:         time.Second,
		Interval:    10 * time.Millisecond,
		Sample:      s,
		PState:      tab.Max(),
		PStateIndex: tab.Len() - 1,
		Table:       tab,
	}
}

// --- extension-study benches ---

func BenchmarkExtFeedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).FeedbackExtension()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].OverFrac*100, "plain-%overlimit")
		b.ReportMetric(r.Rows[1].OverFrac*100, "fb-%overlimit")
		emit(b, i, r)
	}
}

func BenchmarkExtThermal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).ThermalStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].OverFrac*100, "unmanaged-%over")
		b.ReportMetric(r.Rows[2].MaxC, "predictive-maxC")
		emit(b, i, r)
	}
}

func BenchmarkExtDVFSvsThrottling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).DVFSvsThrottling()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].DVFSSave*100, "swim-dvfs-%save@75")
		b.ReportMetric(r.Rows[0].ThrottleSave*100, "swim-thr-%save@75")
		emit(b, i, r)
	}
}

func BenchmarkExtUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchCtx(b).UtilizationStudy()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Workload == "batch" {
				b.ReportMetric(row.OnDemandSave*100, "batch-od-%save")
				b.ReportMetric(row.PSSave*100, "batch-ps-%save")
			}
		}
		emit(b, i, r)
	}
}

// BenchmarkAblationPhaseAware contrasts plain PM with the phase-aware
// wrapper that bypasses up-shift hysteresis on detected regime
// changes, on the phase-alternating ammp workload at 14.5 W.
func BenchmarkAblationPhaseAware(b *testing.B) {
	for _, aware := range []bool{false, true} {
		label := "plain"
		if aware {
			label = "phase-aware"
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := spec.ByName("ammp")
				if err != nil {
					b.Fatal(err)
				}
				m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 14.5})
				if err != nil {
					b.Fatal(err)
				}
				var gov machine.Governor = pm
				if aware {
					gov, err = control.NewPhaseAwarePM(pm, 0, 0)
					if err != nil {
						b.Fatal(err)
					}
				}
				run, err := m.Run(w, gov)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.Duration.Seconds(), "sim-seconds")
				b.ReportMetric(trace.FractionAbove(run.MeasuredPowers(), 14.5)*100, "%overlimit")
			}
		})
	}
}

// BenchmarkEnergyDelayProducts reports PS's EDP/ED2P gains over full
// speed on a memory-bound workload — the voltage-scaling payoff in the
// standard efficiency metrics.
func BenchmarkEnergyDelayProducts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := spec.ByName("swim")
		if err != nil {
			b.Fatal(err)
		}
		m, err := machine.New(machine.Config{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		base, err := m.Run(w, nil)
		if err != nil {
			b.Fatal(err)
		}
		ps, err := control.NewPowerSave(control.PSConfig{Floor: 0.8})
		if err != nil {
			b.Fatal(err)
		}
		run, err := m.Run(w, ps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(base.EDP()/run.EDP(), "EDP-gain")
		b.ReportMetric(base.ED2P()/run.ED2P(), "ED2P-gain")
	}
}
