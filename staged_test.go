package aapm

import (
	"bytes"
	"testing"
)

// stagedGoldenRun is goldenRun's staged-engine twin: instead of
// Machine.Run it steps a session manually with extra hooks subscribed
// and stage timing enabled — everything that must NOT perturb the
// canonical trace.
func stagedGoldenRun(t *testing.T, gov Governor) (*Run, *RunMetrics) {
	t.Helper()
	w, err := Workload("ammp")
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = 1
	m, err := NewPlatform(PlatformConfig{Chain: NIChain(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession(w, gov)
	if err != nil {
		t.Fatal(err)
	}
	col := NewMetricsCollector(14.5)
	s.Subscribe(col)
	s.Subscribe(HookBase{}) // a second, inert subscriber
	s.EnableStageTiming()
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	return s.Result(), col
}

// The staged engine with a loaded hook bus must reproduce the seed
// golden traces byte-for-byte: subscribers and stage timing are
// observational only.
func TestStagedEngineMatchesGoldenPM(t *testing.T) {
	pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	if err != nil {
		t.Fatal(err)
	}
	run, col := stagedGoldenRun(t, pm)
	checkGolden(t, "golden_pm_ammp.csv", run)
	if col.Ticks != len(run.Rows) {
		t.Errorf("collector saw %d ticks, trace has %d rows", col.Ticks, len(run.Rows))
	}
	if col.StageTotal() <= 0 {
		t.Error("stage timing enabled but nothing recorded")
	}
}

func TestStagedEngineMatchesGoldenPS(t *testing.T) {
	ps, err := NewPowerSave(PSConfig{Floor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	run, _ := stagedGoldenRun(t, ps)
	checkGolden(t, "golden_ps_ammp.csv", run)
}

// Stepping a session by hand and Machine.Run are the same engine: the
// traces they produce are byte-identical.
func TestStagedEngineMatchesRun(t *testing.T) {
	mk := func(staged bool) *bytes.Buffer {
		pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
		if err != nil {
			t.Fatal(err)
		}
		var run *Run
		if staged {
			run, _ = stagedGoldenRun(t, pm)
		} else {
			run = goldenRun(t, pm)
		}
		var buf bytes.Buffer
		if err := run.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(mk(true).Bytes(), mk(false).Bytes()) {
		t.Fatal("manually stepped session diverged from Machine.Run")
	}
}
