package aapm

// Telemetry acceptance tests at the facade level: the observability
// layer must be invisible to the simulation (golden traces stay
// byte-identical with every exporter subscribed) and near-free when
// nobody subscribes (the overhead smoke below).

import (
	"bytes"
	"io"
	"testing"
	"time"

	"aapm/internal/spec"
)

// TestGoldenTraceWithTelemetry re-runs the canonical golden
// configuration with a telemetry observer AND a trace-event exporter
// subscribed, and compares against the same pinned fixture as the
// plain run: telemetry must not perturb a single byte of the trace.
func TestGoldenTraceWithTelemetry(t *testing.T) {
	if *update {
		t.Skip("fixture owned by TestGoldenPMTrace")
	}
	pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Workload("ammp")
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = 1
	m, err := NewPlatform(PlatformConfig{Chain: NIChain(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTelemetryRegistry()
	tw := NewTraceEventWriter(io.Discard)
	run, err := m.RunWith(w, pm,
		NewTelemetryObserver(reg, "golden", "pm"),
		tw.RunHook("golden", "pm"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() == 0 {
		t.Fatal("trace exporter saw no events; test is vacuous")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("registry empty after observed run; test is vacuous")
	}
	checkGolden(t, "golden_pm_ammp.csv", run)
}

// tickCost measures the per-tick wall-clock of a full ammp run with
// the given extra hook (nil = none), minimum over trials — the
// standard way to strip scheduler noise from a microbenchmark.
func tickCost(t *testing.T, trials int, mkHook func() Hook) time.Duration {
	t.Helper()
	w, err := spec.ByName("ammp")
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = 1
	best := time.Duration(0)
	for trial := 0; trial < trials; trial++ {
		m, err := NewPlatform(PlatformConfig{Chain: NIChain(), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.NewSession(w, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mkHook != nil {
			s.Subscribe(mkHook())
		}
		ticks := 0
		start := time.Now()
		for {
			done, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			ticks++
			if done {
				break
			}
		}
		elapsed := time.Since(start)
		run := s.Result()
		if len(run.Rows) == 0 || ticks == 0 {
			t.Fatal("degenerate timing run")
		}
		per := elapsed / time.Duration(ticks)
		if trial == 0 || per < best {
			best = per
		}
	}
	return best
}

// TestTelemetryOffOverhead is the self-observation budget: with no
// telemetry subscriber attached, the hook-bus dispatch a subscriber
// would ride must cost ≤5% per tick versus a bare session. A no-op
// hook isolates exactly the fan-out path — the telemetry layer's cost
// floor when it is compiled in but disabled. Min-of-trials on both
// sides (the standard way to strip scheduler noise), interleaved and
// retried so drifting CI load hits both configurations alike.
func TestTelemetryOffOverhead(t *testing.T) {
	const (
		trials   = 5
		attempts = 4
		budget   = 1.05
	)
	var base, hooked time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		base = tickCost(t, trials, nil)
		hooked = tickCost(t, trials, func() Hook { return &HookBase{} })
		if float64(hooked) <= float64(base)*budget {
			return
		}
	}
	t.Errorf("no-op hook per-tick cost %v vs bare %v exceeds the %.0f%% budget",
		hooked, base, (budget-1)*100)
}
