package aapm

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden trace fixtures instead of diffing:
//
//	go test -run TestGolden -update .
var update = flag.Bool("update", false, "rewrite golden trace fixtures under testdata/")

// goldenRun executes one iteration of ammp at seed 1 on the NI
// measurement chain — the canonical fixture configuration. Everything
// in the simulation is virtual-time and seed-driven, so the resulting
// trace must reproduce byte-for-byte on every platform.
func goldenRun(t *testing.T, gov Governor) *Run {
	t.Helper()
	w, err := Workload("ammp")
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = 1
	m, err := NewPlatform(PlatformConfig{Chain: NIChain(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run(w, gov)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// checkGolden compares the run's CSV against testdata/<name>, row by
// row, or rewrites the fixture under -update.
func checkGolden(t *testing.T, name string, run *Run) {
	t.Helper()
	var buf bytes.Buffer
	if err := run.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update .` to create fixtures)", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	// Row-level diff so a drift report names the first diverging
	// intervals rather than just "files differ".
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	exp := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	var diffs []string
	n := len(got)
	if len(exp) > n {
		n = len(exp)
	}
	for i := 0; i < n && len(diffs) < 5; i++ {
		g, e := "<missing>", "<missing>"
		if i < len(got) {
			g = got[i]
		}
		if i < len(exp) {
			e = exp[i]
		}
		if g != e {
			diffs = append(diffs, fmt.Sprintf("row %d:\n  got  %s\n  want %s", i, g, e))
		}
	}
	t.Fatalf("golden trace %s drifted (%d vs %d rows); first differing rows:\n%s\n(re-run with -update only if the change is intentional)",
		name, len(got)-1, len(exp)-1, strings.Join(diffs, "\n"))
}

func TestGoldenPMTrace(t *testing.T) {
	pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_pm_ammp.csv", goldenRun(t, pm))
}

func TestGoldenPSTrace(t *testing.T) {
	ps, err := NewPowerSave(PSConfig{Floor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_ps_ammp.csv", goldenRun(t, ps))
}

// The fixtures must also be insensitive to run order and repetition —
// two back-to-back runs on fresh platforms produce identical bytes.
func TestGoldenRunIsDeterministic(t *testing.T) {
	mk := func() *bytes.Buffer {
		pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := goldenRun(t, pm).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(mk().Bytes(), mk().Bytes()) {
		t.Fatal("two identical-seed runs produced different traces")
	}
}
