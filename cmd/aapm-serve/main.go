// Command aapm-serve runs the asynchronous run service: submit
// simulation jobs over HTTP, poll or stream their progress, and fetch
// cached results. The interactive dashboard and the Prometheus
// /metrics endpoint share the same mux and telemetry registry, so one
// scrape sees the service, every job's run, and the Go runtime.
//
// Usage:
//
//	aapm-serve [-addr :8080] [-queue 64] [-workers 4] [-job-timeout 2m]
//	           [-max-jobs N] [-max-result-bytes N] [-tenant-weights a=2,b=1]
//	           [-tenant-rate R] [-tenant-burst B] [-pprof]
//	           [-trace-sample 0.01] [-trace-tenant-sample a=1,b=0]
//	           [-trace-out trace.json]
//	           [-fleet-nodes N] [-fleet-levels 2] [-fleet-fanout 8]
//	           [-fleet-budget W] [-fleet-epoch-ticks 10] [-fleet-ticks 400]
//	           [-fleet-deadline 8]
//
// Quick start:
//
//	aapm-serve &
//	curl -s -X POST localhost:8080/api/jobs \
//	  -d '{"workload":"ammp","governor":"pm:limit=14.5","seed":1}'
//	curl -s localhost:8080/api/jobs/<id>            # poll status
//	curl -sN localhost:8080/api/jobs/<id>/events    # stream progress
//	curl -s localhost:8080/api/jobs/<id>/result     # cached result
//
// With -fleet-nodes > 0 the service hosts a resident synthetic fleet
// and mounts the declarative intent API:
//
//	aapm-serve -fleet-nodes 32 &
//	curl -s -X POST localhost:8080/api/intents \
//	  -d '{"kind":"cap","level":1,"group":0,"watts":60}'
//	curl -s localhost:8080/api/intents/<id>/status   # poll convergence
//
// SIGINT/SIGTERM shuts down gracefully: intake stops, queued jobs are
// marked aborted, running jobs drain (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aapm/internal/dash"
	"aapm/internal/serve"
	"aapm/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 64, "pending-job queue depth (full queue answers 429)")
	workers := flag.Int("workers", 4, "execution pool cap; effective pool is min(GOMAXPROCS, workers)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-job execution deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for running jobs")
	maxJobs := flag.Int("max-jobs", 0, "bound on retained jobs; terminal jobs evict LRU beyond it (0 = unbounded)")
	maxResultBytes := flag.Int64("max-result-bytes", 0, "bound on retained result bytes across Done jobs (0 = unbounded)")
	tenantWeights := flag.String("tenant-weights", "", "fair-share weights as name=w pairs, e.g. acme=2,dunder=1 (unlisted tenants weigh 1)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant intake rate in new submissions/sec (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant intake burst; 0 derives max(1, 2*rate)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	traceSample := flag.Float64("trace-sample", 0.01, "head-sampling rate for job traces in [0,1]")
	traceTenant := flag.String("trace-tenant-sample", "", "per-tenant sampling overrides as name=rate pairs, e.g. acme=1,batch=0")
	traceOut := flag.String("trace-out", "", "append sampled spans as a Chrome trace-event JSON file (viewable in Perfetto)")
	fleetNodes := flag.Int("fleet-nodes", 0, "resident-fleet node count; > 0 hosts a fleet and enables /api/intents")
	fleetLevels := flag.Int("fleet-levels", 2, "resident-fleet allocation-tree depth")
	fleetFanout := flag.Int("fleet-fanout", 8, "resident-fleet group fanout")
	fleetBudget := flag.Float64("fleet-budget", 0, "resident-fleet root power budget in watts (0 derives 12*nodes)")
	fleetEpochTicks := flag.Int("fleet-epoch-ticks", 10, "resident-fleet reallocation period in ticks")
	fleetTicks := flag.Int("fleet-ticks", 400, "resident-fleet generation length in ticks")
	fleetDeadline := flag.Int("fleet-deadline", 0, "intent escalation deadline in reconcile epochs (0 = controller default)")
	flag.Parse()

	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		fatal(err)
	}
	tenantRates, err := parseRates(*traceTenant)
	if err != nil {
		fatal(err)
	}
	var export *telemetry.TraceEventWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		export = telemetry.NewTraceEventWriter(f)
		defer func() {
			_ = export.Close()
			_ = f.Close()
		}()
	}

	reg := telemetry.NewRegistry()
	svc := serve.New(serve.Config{
		QueueDepth:       *queue,
		Workers:          *workers,
		JobTimeout:       *jobTimeout,
		MaxJobs:          *maxJobs,
		MaxResultBytes:   *maxResultBytes,
		TenantWeights:    weights,
		TenantRatePerSec: *tenantRate,
		TenantBurst:      *tenantBurst,
		Telemetry:        reg,
		TraceSampleRate:  *traceSample,
		TenantTraceRate:  tenantRates,
		TraceExport:      export,
		Fleet:            fleetOptions(*fleetNodes, *fleetLevels, *fleetFanout, *fleetBudget, *fleetEpochTicks, *fleetTicks, *fleetDeadline),
	})

	// One mux: the job API, the dashboard (which also serves /metrics
	// and /api/telemetry from the shared registry), and optionally
	// pprof via the dash options.
	mux := http.NewServeMux()
	mux.Handle("/api/jobs", svc.Handler())
	mux.Handle("/api/jobs/", svc.Handler())
	mux.Handle("/api/trace/", svc.Handler())
	mux.Handle("/api/slo", svc.Handler())
	mux.Handle("/api/intents", svc.Handler())
	mux.Handle("/api/intents/", svc.Handler())
	mux.Handle("/healthz", svc.Handler())
	mux.Handle("/", dash.NewHandler(dash.Options{Telemetry: reg, PProf: *pprofOn}))

	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	host := *addr
	if strings.HasPrefix(host, ":") {
		host = "localhost" + host
	}
	fmt.Printf("aapm run service listening on %s (%d workers, queue %d)\n", *addr, svc.Workers(), *queue)
	fmt.Printf("  submit:  POST http://%s/api/jobs\n", host)
	fmt.Printf("  metrics: http://%s/metrics\n", host)
	fmt.Printf("  health:  http://%s/healthz  (SLO burn: /api/slo, traces: /api/trace/{job})\n", host)
	if *fleetNodes > 0 {
		fmt.Printf("  intents: POST http://%s/api/intents  (resident fleet: %d nodes)\n", host, *fleetNodes)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		fmt.Printf("aapm-serve: %s — draining (up to %s)\n", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "aapm-serve: http shutdown:", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "aapm-serve: drain timed out; running jobs aborted")
	}
}

// fleetOptions builds the resident-fleet config, or nil when no fleet
// is requested.
func fleetOptions(nodes, levels, fanout int, budget float64, epochTicks, ticks, deadline int) *serve.FleetOptions {
	if nodes <= 0 {
		return nil
	}
	return &serve.FleetOptions{
		Nodes:           nodes,
		Levels:          levels,
		Fanout:          fanout,
		BudgetW:         budget,
		EpochTicks:      epochTicks,
		GenerationTicks: ticks,
		DeadlineEpochs:  deadline,
	}
}

// parseWeights turns "acme=2,dunder=1" into a weight map. Empty input
// means every tenant weighs 1 (plain round-robin).
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad -tenant-weights entry %q: want name=weight", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -tenant-weights weight %q: want integer >= 1", val)
		}
		out[name] = w
	}
	return out, nil
}

// parseRates turns "acme=1,batch=0" into per-tenant sampling-rate
// overrides.
func parseRates(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad -trace-tenant-sample entry %q: want name=rate", pair)
		}
		r, err := strconv.ParseFloat(val, 64)
		if err != nil || r < 0 || r > 1 {
			return nil, fmt.Errorf("bad -trace-tenant-sample rate %q: want a number in [0,1]", val)
		}
		out[name] = r
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aapm-serve:", err)
	os.Exit(1)
}
