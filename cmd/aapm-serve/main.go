// Command aapm-serve runs the asynchronous run service: submit
// simulation jobs over HTTP, poll or stream their progress, and fetch
// cached results. The interactive dashboard and the Prometheus
// /metrics endpoint share the same mux and telemetry registry, so one
// scrape sees the service, every job's run, and the Go runtime.
//
// Usage:
//
//	aapm-serve [-addr :8080] [-queue 64] [-workers 4] [-job-timeout 2m] [-pprof]
//
// Quick start:
//
//	aapm-serve &
//	curl -s -X POST localhost:8080/api/jobs \
//	  -d '{"workload":"ammp","governor":"pm:limit=14.5","seed":1}'
//	curl -s localhost:8080/api/jobs/<id>            # poll status
//	curl -sN localhost:8080/api/jobs/<id>/events    # stream progress
//	curl -s localhost:8080/api/jobs/<id>/result     # cached result
//
// SIGINT/SIGTERM shuts down gracefully: intake stops, queued jobs are
// marked aborted, running jobs drain (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aapm/internal/dash"
	"aapm/internal/serve"
	"aapm/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 64, "pending-job queue depth (full queue answers 429)")
	workers := flag.Int("workers", 4, "execution pool cap; effective pool is min(GOMAXPROCS, workers)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-job execution deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for running jobs")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	flag.Parse()

	reg := telemetry.NewRegistry()
	svc := serve.New(serve.Config{
		QueueDepth: *queue,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
		Telemetry:  reg,
	})

	// One mux: the job API, the dashboard (which also serves /metrics
	// and /api/telemetry from the shared registry), and optionally
	// pprof via the dash options.
	mux := http.NewServeMux()
	mux.Handle("/api/jobs", svc.Handler())
	mux.Handle("/api/jobs/", svc.Handler())
	mux.Handle("/", dash.NewHandler(dash.Options{Telemetry: reg, PProf: *pprofOn}))

	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	host := *addr
	if strings.HasPrefix(host, ":") {
		host = "localhost" + host
	}
	fmt.Printf("aapm run service listening on %s (%d workers, queue %d)\n", *addr, svc.Workers(), *queue)
	fmt.Printf("  submit:  POST http://%s/api/jobs\n", host)
	fmt.Printf("  metrics: http://%s/metrics\n", host)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		fmt.Printf("aapm-serve: %s — draining (up to %s)\n", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "aapm-serve: http shutdown:", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "aapm-serve: drain timed out; running jobs aborted")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aapm-serve:", err)
	os.Exit(1)
}
