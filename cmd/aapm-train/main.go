// Command aapm-train regenerates the power and performance estimation
// models from the MS-Loops microbenchmarks: it characterizes the 12
// training configurations on the simulated memory hierarchy, runs them
// at all eight p-states, fits the per-p-state DPC power lines (Table
// II) by least absolute error, and grid-fits the eq. 3 performance
// parameters.
package main

import (
	"flag"
	"fmt"
	"os"

	"aapm/internal/experiment"
)

func main() {
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	ctx, err := experiment.NewContext(experiment.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	t1, err := ctx.TableIMicrobenchmarks()
	if err != nil {
		fatal(err)
	}
	if err := t1.Print(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
	t2, err := ctx.TableIIPowerModel()
	if err != nil {
		fatal(err)
	}
	if err := t2.Print(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aapm-train:", err)
	os.Exit(1)
}
