// Command aapm-tickbench measures the batch tick kernel's throughput
// against the staged reference engine on identical specs and emits the
// comparison, optionally as a BENCH_tick.json history entry.
//
// Both paths run the cluster benchmark's eight-node mix (NI chain,
// per-node PerformanceMaximizer at a 13 W share, full-length
// workloads): the batch path steps one BatchState on its specialized
// PM body with trace retention off; the reference path steps the same
// machines through machine.Session. Cost is wall-clock divided by
// node-ticks executed, the same accounting on both sides, and the
// reported figure is the fastest of -count samples (the conventional
// defense against scheduler noise on shared hosts).
//
// Usage:
//
//	aapm-tickbench [-count 3] [-json] [-note "..."]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"aapm/internal/cluster"
	"aapm/internal/control"
	"aapm/internal/kernel"
	"aapm/internal/machine"
	"aapm/internal/sensor"
	"aapm/internal/spec"
)

var names = []string{"swim", "mcf", "lucas", "crafty", "gzip", "gcc", "art", "ammp"}

// buildNodes assembles the benchmark mix: fresh machines and governors
// every call, so each timed sample starts from identical state.
func buildNodes() ([]kernel.BatchNode, error) {
	nodes := make([]kernel.BatchNode, len(names))
	for i, name := range names {
		w, err := spec.ByName(name)
		if err != nil {
			return nil, err
		}
		w.Iterations = w.Repeats()
		m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: 7 + int64(i)*7919})
		if err != nil {
			return nil, err
		}
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 13, FeedbackGain: 0.25})
		if err != nil {
			return nil, err
		}
		nodes[i] = kernel.BatchNode{Machine: m, Workload: w, Governor: pm}
	}
	return nodes, nil
}

// batchSample times one full batch run and returns ns/node-tick.
func batchSample() (float64, error) {
	nodes, err := buildNodes()
	if err != nil {
		return 0, err
	}
	b, err := kernel.NewBatch(nodes, kernel.BatchOptions{})
	if err != nil {
		return 0, err
	}
	if b.Kind() != "pm" {
		return 0, fmt.Errorf("expected the pm fast path, got %q", b.Kind())
	}
	start := time.Now()
	if err := b.Run(); err != nil {
		return 0, err
	}
	wall := time.Since(start)
	ticks := 0
	for i := range nodes {
		ticks += b.Ticks(i)
	}
	if ticks == 0 {
		return 0, fmt.Errorf("batch run executed no ticks")
	}
	return float64(wall.Nanoseconds()) / float64(ticks), nil
}

// clusterSample times the shared-budget coordinator over the same mix
// on the staged engine — the deployment path the batch kernel replaces
// and the BenchmarkClusterTick baseline the acceptance ratio is
// defined against — and returns ns/node-tick (wall clock over emitted
// rows).
func clusterSample() (float64, error) {
	nodes, err := buildNodes()
	if err != nil {
		return 0, err
	}
	cnodes := make([]cluster.Node, len(nodes))
	for i, n := range nodes {
		cnodes[i] = cluster.Node{Name: names[i], Workload: n.Workload}
	}
	start := time.Now()
	res, err := cluster.Run(cluster.Config{
		BudgetW: 104,
		Nodes:   cnodes,
		Seed:    7,
		Chain:   sensor.NIDefault(),
		Workers: 1,
		Engine:  "staged",
	})
	if err != nil {
		return 0, err
	}
	wall := time.Since(start)
	rows := 0
	for _, r := range res.Runs {
		rows += len(r.Rows)
	}
	if rows == 0 {
		return 0, fmt.Errorf("cluster run emitted no rows")
	}
	return float64(wall.Nanoseconds()) / float64(rows), nil
}

// stagedSample times the same mix through the staged reference engine
// (machine.Session, no hooks) and returns ns/node-tick.
func stagedSample() (float64, error) {
	nodes, err := buildNodes()
	if err != nil {
		return 0, err
	}
	sessions := make([]*machine.Session, len(nodes))
	for i, n := range nodes {
		s, err := n.Machine.NewSession(n.Workload, n.Governor)
		if err != nil {
			return 0, err
		}
		sessions[i] = s
	}
	start := time.Now()
	rows := 0
	for _, s := range sessions {
		for {
			done, err := s.Step()
			if err != nil {
				return 0, err
			}
			if done {
				break
			}
		}
		rows += len(s.Result().Rows)
	}
	wall := time.Since(start)
	if rows == 0 {
		return 0, fmt.Errorf("staged run executed no ticks")
	}
	return float64(wall.Nanoseconds()) / float64(rows), nil
}

func best(samples []float64) float64 {
	m := samples[0]
	for _, s := range samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// spreadPct is the sample spread as a percentage of the best sample —
// (max-min)/min — the scheduler-noise yardstick the history entries
// carry so a regression can be told from a noisy host.
func spreadPct(samples []float64) float64 {
	lo, hi := samples[0], samples[0]
	for _, s := range samples[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo == 0 {
		return 0
	}
	return (hi - lo) / lo * 100
}

// cpuModel reads the host CPU's model name for the history entry.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// entry mirrors one BENCH_tick.json history element. ns_per_op is the
// batch kernel's cost per node-tick; staged_ns_per_op is the bare
// staged-session cost on the same specs; cluster_ns_per_op is the
// staged shared-budget coordinator (the BenchmarkClusterTick baseline)
// and speedup is cluster_ns_per_op / ns_per_op — the acceptance ratio.
type entry struct {
	Date               string    `json:"date"`
	BaseCommit         string    `json:"base_commit"`
	NsPerOp            float64   `json:"ns_per_op"`
	SamplesNsOp        []float64 `json:"samples_ns_per_op"`
	StagedNsPerOp      float64   `json:"staged_ns_per_op"`
	SamplesStagedNsOp  []float64 `json:"samples_staged_ns_per_op"`
	ClusterNsPerOp     float64   `json:"cluster_ns_per_op"`
	SamplesClusterNsOp []float64 `json:"samples_cluster_ns_per_op"`
	SpreadPct          float64   `json:"spread_pct"`
	Speedup            float64   `json:"speedup"`
	CPU                string    `json:"cpu"`
	Note               string    `json:"note,omitempty"`
}

func run() error {
	count := flag.Int("count", 3, "timed samples per engine (best is reported)")
	asJSON := flag.Bool("json", false, "emit a BENCH_tick.json history entry instead of text")
	note := flag.String("note", "", "note field for the -json history entry")
	flag.Parse()
	if *count < 1 {
		return fmt.Errorf("-count must be >= 1")
	}

	batch := make([]float64, 0, *count)
	staged := make([]float64, 0, *count)
	clus := make([]float64, 0, *count)
	for i := 0; i < *count; i++ {
		b, err := batchSample()
		if err != nil {
			return err
		}
		batch = append(batch, b)
		s, err := stagedSample()
		if err != nil {
			return err
		}
		staged = append(staged, s)
		c, err := clusterSample()
		if err != nil {
			return err
		}
		clus = append(clus, c)
		if !*asJSON {
			fmt.Printf("sample %d: batch %.1f, staged %.1f, staged-cluster %.1f ns/node-tick\n", i+1, b, s, c)
		}
	}
	bb, sb, cb := best(batch), best(staged), best(clus)
	speedup := cb / bb

	if *asJSON {
		e := entry{
			Date:               time.Now().UTC().Format("2006-01-02"),
			BaseCommit:         gitHead(),
			NsPerOp:            round1(bb),
			SamplesNsOp:        round1s(batch),
			StagedNsPerOp:      round1(sb),
			SamplesStagedNsOp:  round1s(staged),
			ClusterNsPerOp:     round1(cb),
			SamplesClusterNsOp: round1s(clus),
			SpreadPct:          round1(spreadPct(batch)),
			Speedup:            round2(speedup),
			CPU:                cpuModel(),
			Note:               *note,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(e)
	}
	fmt.Printf("batch kernel: %.1f ns/node-tick (best of %d, spread %.1f%%)\n", bb, *count, spreadPct(batch))
	fmt.Printf("staged engine: %.1f ns/node-tick (best of %d, spread %.1f%%)\n", sb, *count, spreadPct(staged))
	fmt.Printf("staged cluster baseline: %.1f ns/node-tick (best of %d, spread %.1f%%)\n", cb, *count, spreadPct(clus))
	fmt.Printf("speedup vs cluster baseline: %.2fx (vs bare staged engine: %.2fx)\n", speedup, sb/bb)
	return nil
}

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

func round1s(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = round1(v)
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aapm-tickbench:", err)
		os.Exit(1)
	}
}
