// Command aapm-loadgen drives a running aapm-serve instance with
// open-loop load and reports latency, completion-fairness, and error
// statistics. Open-loop means arrivals follow the configured rate
// profile regardless of how fast the server answers — the harness
// that exposes queueing collapse, unlike closed-loop clients that
// politely slow down with the server.
//
// Usage:
//
//	aapm-loadgen [-addr http://localhost:8080] [-rate 50] [-duration 10s]
//	             [-profile steady|flash|diurnal|soak] [-tenants acme=2,dunder=1]
//	             [-server-pid N] [-json out.json]
//	             [-max-submit-p99 250ms] [-fairness-tol 0.10]
//
// The soak profile is steady arrivals held long enough (the -duration
// default rises to 60s) to push the server's bounded job store into
// eviction steady-state; the report then includes the server's
// evicted-jobs counter (scraped from /metrics) and its peak RSS
// alongside the usual latency statistics.
//
// Each submission is a distinct spec (the seed increments), so every
// accepted job exercises the full execute path rather than the result
// cache. Submissions rotate uniformly across the -tenants list; under
// saturation the server's weighted fair-share drain shows up as
// per-tenant completion shares tracking the configured weights.
//
// Gates (any failure exits 1, for CI):
//
//	any HTTP 5xx or transport error   always fatal
//	-max-submit-p99 > 0               p99 submit latency bound
//	-fairness-tol > 0                 per-tenant completion share within
//	                                  tol of weight/Σweights
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aapm/internal/obs"
	"aapm/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the aapm-serve instance")
	rate := flag.Float64("rate", 50, "mean arrival rate, submissions/sec across all tenants")
	duration := flag.Duration("duration", 10*time.Second, "arrival window (the soak profile defaults to 60s when unset)")
	profile := flag.String("profile", "steady", "arrival profile: steady, flash (4x crowd mid-run), diurnal (sinusoid), soak (steady, eviction steady-state)")
	tenants := flag.String("tenants", "", "tenant mix as name=weight pairs, e.g. acme=2,dunder=1; empty = single default tenant")
	workload := flag.String("workload", "ammp", "suite workload each job runs")
	governor := flag.String("governor", "pm:limit=14.5", "governor spec for each job")
	iterations := flag.Int("iterations", 1, "iterations per job (keep small for load runs)")
	seedBase := flag.Int64("seed-base", 1, "first seed; increments per submission so every spec is distinct")
	settle := flag.Duration("settle", 15*time.Second, "post-window bound for outstanding jobs to finish")
	serverPID := flag.Int("server-pid", 0, "aapm-serve PID; records peak RSS from /proc/<pid>/status VmHWM")
	jsonOut := flag.String("json", "", "write the report JSON to this file instead of stdout")
	maxSubmitP99 := flag.Duration("max-submit-p99", 0, "fail if p99 submit latency exceeds this (0 = no gate)")
	fairnessTol := flag.Float64("fairness-tol", 0, "fail if a tenant's completion share strays further than this from its weight share (0 = no gate)")
	sloReport := flag.String("slo-report", "", "write a BENCH_serve.json-style loadgen history entry, with the server's SLO burn-rate peaks from /api/slo, to this file (\"-\" = stdout)")
	sloGate := flag.Bool("slo-gate", false, "fail if the server reports an SLO breach at run end")
	flag.Parse()

	// A soak needs time to fill MaxJobs and then churn past it; unless
	// the caller pinned a window, hold the load for a minute.
	if *profile == "soak" {
		durationSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "duration" {
				durationSet = true
			}
		})
		if !durationSet {
			*duration = 60 * time.Second
		}
	}

	base := *addr
	if strings.HasPrefix(base, ":") {
		base = "http://localhost" + base
	}
	mix, err := parseTenants(*tenants)
	if err != nil {
		fatal(err)
	}
	prof, err := profileFunc(*profile)
	if err != nil {
		fatal(err)
	}

	g := &loadgen{
		base: base,
		client: &http.Client{
			Timeout: 30 * time.Second,
			// The poller fleet holds one outstanding GET per accepted
			// job; without a deep idle pool every poll opens a fresh
			// connection and the harness measures dialing, not serving.
			Transport: &http.Transport{MaxIdleConnsPerHost: 256},
		},
		spec: serve.JobSpec{
			Workload:   *workload,
			Governor:   *governor,
			Iterations: *iterations,
		},
		tenants: mix,
		stats:   newStats(mix),
	}

	fmt.Fprintf(os.Stderr, "aapm-loadgen: %s profile, %.0f/s for %s against %s (%d tenant(s))\n",
		*profile, *rate, *duration, base, max(1, len(mix)))
	windowEnd := g.run(*rate, *duration, prof, *seedBase)
	g.await(*settle)
	report := g.stats.report(*profile, *rate, *duration, peakRSS(*serverPID), windowEnd)
	report.ServerEvicted = fetchEvicted(g.client, base)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "aapm-loadgen: report written to %s\n", *jsonOut)
	} else {
		os.Stdout.Write(out)
	}

	var slo *obs.SLOStatus
	if *sloReport != "" || *sloGate {
		slo, err = fetchSLO(g.client, base)
		if err != nil {
			fatal(err)
		}
	}
	if *sloReport != "" {
		if err := writeSLOReport(*sloReport, report, slo); err != nil {
			fatal(err)
		}
	}

	if msg := gate(report, *maxSubmitP99, *fairnessTol); msg != "" {
		fatal(fmt.Errorf("gate failed: %s", msg))
	}
	if *sloGate && slo != nil && !slo.Healthy {
		var reasons []string
		for _, o := range slo.Objectives {
			if o.Breaching {
				reasons = append(reasons, o.Reason)
			}
		}
		fatal(fmt.Errorf("slo gate failed: %s", strings.Join(reasons, "; ")))
	}
	fmt.Fprintf(os.Stderr, "aapm-loadgen: ok — %d submitted, %d accepted, %d completed, %d rejected (429), 0 failures\n",
		report.Submitted, report.Accepted, report.Completed, report.Rejected429)
	if *profile == "soak" {
		fmt.Fprintf(os.Stderr, "aapm-loadgen: soak — server evicted %d jobs (pollers saw %d vanish mid-poll), peak RSS %.1f MiB\n",
			report.ServerEvicted, report.EvictedObserved, float64(report.PeakRSSBytes)/(1<<20))
	}
}

// fetchEvicted scrapes the server's /metrics exposition and sums the
// aapm_serve_jobs_evicted_total series across eviction reasons. -1
// when the scrape fails (e.g. no /metrics mounted), so a soak report
// distinguishes "no evictions" from "could not tell".
func fetchEvicted(client *http.Client, base string) int64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return -1
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return -1
	}
	var total float64
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, serve.MetricEvicted) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		total += v
	}
	return int64(total)
}

// fetchSLO pulls the server's objective burn-rate status.
func fetchSLO(client *http.Client, base string) (*obs.SLOStatus, error) {
	resp, err := client.Get(base + "/api/slo")
	if err != nil {
		return nil, fmt.Errorf("slo fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("slo fetch: HTTP %d", resp.StatusCode)
	}
	var st obs.SLOStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("slo fetch: %w", err)
	}
	return &st, nil
}

// sloPeak is one objective's burn-rate high-water mark for the run.
type sloPeak struct {
	Name         string  `json:"name"`
	PeakFastBurn float64 `json:"peak_fast_burn"`
	PeakSlowBurn float64 `json:"peak_slow_burn"`
	Breaching    bool    `json:"breaching,omitempty"`
	Reason       string  `json:"reason,omitempty"`
}

// sloHistoryEntry mirrors the loadgen history entries committed in
// BENCH_serve.json, extended with the run's SLO burn-rate peaks, so a
// run's entry can be pasted into the history array as-is.
type sloHistoryEntry struct {
	Date            string                  `json:"date"`
	Profile         string                  `json:"profile"`
	RatePerSec      float64                 `json:"rate_per_sec"`
	WindowSec       float64                 `json:"window_sec"`
	Tenants         map[string]*tenantStats `json:"tenants,omitempty"`
	Submitted       int                     `json:"submitted"`
	Accepted        int                     `json:"accepted"`
	Rejected429     int                     `json:"rejected_429"`
	HTTP5xx         int                     `json:"http_5xx"`
	Completed       int                     `json:"completed"`
	SubmitLatencyMs map[string]float64      `json:"submit_latency_ms"`
	PeakRSSBytes    int64                   `json:"peak_rss_bytes,omitempty"`
	SLOHealthy      bool                    `json:"slo_healthy"`
	SLO             []sloPeak               `json:"slo"`
}

func writeSLOReport(path string, r *reportT, slo *obs.SLOStatus) error {
	entry := sloHistoryEntry{
		Date:        time.Now().Format("2006-01-02"),
		Profile:     r.Profile,
		RatePerSec:  r.TargetRate,
		WindowSec:   r.WindowSec,
		Tenants:     r.Tenants,
		Submitted:   r.Submitted,
		Accepted:    r.Accepted,
		Rejected429: r.Rejected429,
		HTTP5xx:     r.HTTP5xx,
		Completed:   r.Completed,
		SubmitLatencyMs: map[string]float64{
			"p50": r.Submit.P50ms, "p99": r.Submit.P99ms, "p999": r.Submit.P999ms,
		},
		PeakRSSBytes: r.PeakRSSBytes,
		SLOHealthy:   slo.Healthy,
	}
	for _, o := range slo.Objectives {
		entry.SLO = append(entry.SLO, sloPeak{
			Name:         o.Name,
			PeakFastBurn: o.PeakFastBurn,
			PeakSlowBurn: o.PeakSlowBurn,
			Breaching:    o.Breaching,
			Reason:       o.Reason,
		})
	}
	out, err := json.MarshalIndent(entry, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "aapm-loadgen: SLO report written to %s\n", path)
	return nil
}

// tenant is one entry of the submission mix.
type tenant struct {
	name   string
	weight int
}

func parseTenants(s string) ([]tenant, error) {
	if s == "" {
		return nil, nil
	}
	var out []tenant
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad -tenants entry %q: want name=weight", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -tenants weight %q: want integer >= 1", val)
		}
		out = append(out, tenant{name, w})
	}
	return out, nil
}

// profileFunc maps a profile name to an instantaneous-rate multiplier
// over normalized run time t in [0, 1). Every profile integrates to
// roughly 1 so -rate stays the mean.
func profileFunc(name string) (func(t float64) float64, error) {
	switch name {
	case "steady":
		return func(float64) float64 { return 1 }, nil
	case "soak":
		// Arrival-wise identical to steady; the profile's point is the
		// long default window plus the eviction accounting in the report.
		return func(float64) float64 { return 1 }, nil
	case "flash":
		// Baseline with a 4x flash crowd across the middle fifth:
		// mean = 0.8*0.4 + 0.2*4*0.8... keep it simple: 0.8 base, 2.0
		// spike over [0.4, 0.6) → mean 0.8*0.8 + 0.2*2.0 = 1.04.
		return func(t float64) float64 {
			if t >= 0.4 && t < 0.6 {
				return 2.0
			}
			return 0.8
		}, nil
	case "diurnal":
		// Half-sine "day": quiet edges, busy middle; mean 1.
		return func(t float64) float64 {
			return (math.Pi / 2) * math.Sin(math.Pi*t)
		}, nil
	default:
		return nil, fmt.Errorf("unknown -profile %q (want steady, flash, diurnal, or soak)", name)
	}
}

// pending is one accepted job awaiting completion.
type pending struct {
	id       string
	tenant   string
	submitAt time.Time
}

type loadgen struct {
	base    string
	client  *http.Client
	spec    serve.JobSpec
	tenants []tenant
	stats   *stats

	wg          sync.WaitGroup // in-flight submissions
	poll        sync.WaitGroup // completion pollers
	outstanding atomic.Int64   // accepted jobs not yet terminal
}

// run generates the open-loop arrival schedule: it walks normalized
// time, fires each submission in its own goroutine at its scheduled
// instant, and never waits for responses. It returns the window-end
// instant, the cutoff for in-window completion accounting.
func (g *loadgen) run(rate float64, window time.Duration, prof func(float64) float64, seedBase int64) time.Time {
	start := time.Now()
	seed := seedBase
	next := start
	for {
		elapsed := time.Since(start)
		if elapsed >= window {
			break
		}
		t := float64(elapsed) / float64(window)
		r := rate * prof(t)
		if r < 1e-6 {
			// Profile trough: idle forward a step.
			next = next.Add(10 * time.Millisecond)
		} else {
			next = next.Add(time.Duration(float64(time.Second) / r))
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		js := g.spec
		js.Seed = seed
		if len(g.tenants) > 0 {
			js.Tenant = g.tenants[int(seed-seedBase)%len(g.tenants)].name
		}
		seed++
		g.wg.Add(1)
		go g.submit(js)
	}
	end := start.Add(window)
	g.wg.Wait()
	return end
}

func (g *loadgen) submit(js serve.JobSpec) {
	defer g.wg.Done()
	body, err := json.Marshal(js)
	if err != nil {
		g.stats.transportError(js.Tenant, err)
		return
	}
	t0 := time.Now()
	resp, err := g.client.Post(g.base+"/api/jobs", "application/json", bytes.NewReader(body))
	lat := time.Since(t0)
	if err != nil {
		g.stats.transportError(js.Tenant, err)
		return
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&st)
	g.stats.submitted(js.Tenant, resp.StatusCode, lat)
	if (resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK) && st.ID != "" {
		g.poll.Add(1)
		go g.awaitJob(pending{id: st.ID, tenant: js.Tenant, submitAt: t0})
	}
}

// awaitJob polls one job until it reaches a terminal state. The poll
// interval backs off with the number of outstanding jobs so a deep
// backlog doesn't bury the server under status GETs and distort the
// very drain being measured.
func (g *loadgen) awaitJob(p pending) {
	defer g.poll.Done()
	g.outstanding.Add(1)
	defer g.outstanding.Add(-1)
	for {
		resp, err := g.client.Get(g.base + "/api/jobs/" + p.id)
		if err != nil {
			g.stats.transportError(p.tenant, err)
			return
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			// Evicted before we saw it finish: under churny load that is
			// bounded-store behavior, not an error. Count it completed
			// without a latency sample.
			g.stats.evictedBeforeSeen(p.tenant)
			return
		}
		if err == nil {
			switch st.State {
			case "done":
				g.stats.completed(p.tenant, time.Since(p.submitAt))
				return
			case "failed", "canceled", "aborted":
				g.stats.terminalNotDone(p.tenant, st.State)
				return
			}
		}
		wait := 50*time.Millisecond + time.Duration(g.outstanding.Load())*time.Millisecond
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		time.Sleep(wait)
	}
}

// await bounds the post-window wait for outstanding pollers.
func (g *loadgen) await(settle time.Duration) {
	done := make(chan struct{})
	go func() { g.poll.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(settle):
		fmt.Fprintln(os.Stderr, "aapm-loadgen: settle window expired with jobs still outstanding")
	}
}

// --- statistics ---------------------------------------------------

type tenantStats struct {
	Weight            int `json:"weight"`
	Submitted         int `json:"submitted"`
	Accepted          int `json:"accepted"`
	Rejected429       int `json:"rejected_429"`
	Completed         int `json:"completed"`
	Failed            int `json:"failed"`
	CompletedInWindow int `json:"completed_in_window"`
	// CompletionShare is this tenant's fraction of IN-WINDOW
	// completions. The post-window settle drains the whole backlog, so
	// total completions converge to the accepted mix no matter how the
	// scheduler ordered them; only the in-window drain shows the
	// weighted fair share.
	CompletionShare float64 `json:"completion_share"`
}

type latencySummary struct {
	Samples int     `json:"samples"`
	P50ms   float64 `json:"p50_ms"`
	P99ms   float64 `json:"p99_ms"`
	P999ms  float64 `json:"p999_ms"`
}

type reportT struct {
	Profile     string  `json:"profile"`
	TargetRate  float64 `json:"target_rate_per_sec"`
	WindowSec   float64 `json:"window_sec"`
	Submitted   int     `json:"submitted"`
	Accepted    int     `json:"accepted"`
	CacheHits   int     `json:"cache_hits"`
	Rejected429 int     `json:"rejected_429"`
	HTTP5xx     int     `json:"http_5xx"`
	OtherErrors int     `json:"other_errors"`
	Completed   int     `json:"completed"`
	// EvictedObserved counts accepted jobs whose poller saw them vanish
	// from the bounded store (404 + evicted marker) before a terminal
	// state — the client-visible face of eviction steady-state.
	EvictedObserved int `json:"evicted_observed"`
	// ServerEvicted is the server's evicted-jobs counter summed across
	// eviction reasons, scraped from /metrics at run end; -1 when the
	// scrape failed, distinguishing "none evicted" from "could not tell".
	ServerEvicted int64                   `json:"server_evicted_total"`
	Submit        latencySummary          `json:"submit_latency"`
	Completion    latencySummary          `json:"completion_latency"`
	Tenants       map[string]*tenantStats `json:"tenants,omitempty"`
	PeakRSSBytes  int64                   `json:"peak_rss_bytes,omitempty"`
	FirstError    string                  `json:"first_error,omitempty"`
}

// completion is one finished job's accounting sample.
type completion struct {
	tenant string
	at     time.Time
}

type stats struct {
	mu          sync.Mutex
	perTenant   map[string]*tenantStats
	submitLat   []time.Duration
	completeLat []time.Duration
	completions []completion
	evictedSeen int
	cacheHits   int
	http5xx     int
	otherErrors int
	firstError  string
}

func newStats(mix []tenant) *stats {
	s := &stats{perTenant: map[string]*tenantStats{}}
	for _, t := range mix {
		s.perTenant[t.name] = &tenantStats{Weight: t.weight}
	}
	return s
}

func (s *stats) tenant(name string) *tenantStats {
	if name == "" {
		name = "default"
	}
	ts := s.perTenant[name]
	if ts == nil {
		ts = &tenantStats{Weight: 1}
		s.perTenant[name] = ts
	}
	return ts
}

func (s *stats) submitted(tenant string, code int, lat time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenant(tenant)
	ts.Submitted++
	switch {
	case code == http.StatusAccepted:
		ts.Accepted++
		s.submitLat = append(s.submitLat, lat)
	case code == http.StatusOK:
		ts.Accepted++
		s.cacheHits++
		s.submitLat = append(s.submitLat, lat)
	case code == http.StatusTooManyRequests:
		ts.Rejected429++
	case code >= 500:
		s.http5xx++
		s.note(fmt.Sprintf("HTTP %d on submit (tenant %q)", code, tenant))
	default:
		s.otherErrors++
		s.note(fmt.Sprintf("HTTP %d on submit (tenant %q)", code, tenant))
	}
}

func (s *stats) completed(tenant string, lat time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).Completed++
	s.completeLat = append(s.completeLat, lat)
	s.completions = append(s.completions, completion{tenant, time.Now()})
}

func (s *stats) evictedBeforeSeen(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).Completed++
	s.evictedSeen++
	s.completions = append(s.completions, completion{tenant, time.Now()})
}

func (s *stats) terminalNotDone(tenant, state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).Failed++
	s.note(fmt.Sprintf("job ended %s (tenant %q)", state, tenant))
}

func (s *stats) transportError(tenant string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.otherErrors++
	s.note(err.Error())
	_ = tenant
}

func (s *stats) note(msg string) {
	if s.firstError == "" {
		s.firstError = msg
	}
}

func (s *stats) report(profile string, rate float64, window time.Duration, rss int64, windowEnd time.Time) *reportT {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &reportT{
		Profile:         profile,
		TargetRate:      rate,
		WindowSec:       window.Seconds(),
		CacheHits:       s.cacheHits,
		EvictedObserved: s.evictedSeen,
		HTTP5xx:         s.http5xx,
		OtherErrors:     s.otherErrors,
		Submit:          summarize(s.submitLat),
		Completion:      summarize(s.completeLat),
		PeakRSSBytes:    rss,
		FirstError:      s.firstError,
	}
	for _, ts := range s.perTenant {
		r.Submitted += ts.Submitted
		r.Accepted += ts.Accepted
		r.Rejected429 += ts.Rejected429
		r.Completed += ts.Completed
	}
	inWindow := 0
	for _, c := range s.completions {
		if !c.at.After(windowEnd) {
			s.tenant(c.tenant).CompletedInWindow++
			inWindow++
		}
	}
	for _, ts := range s.perTenant {
		if inWindow > 0 {
			ts.CompletionShare = float64(ts.CompletedInWindow) / float64(inWindow)
		}
	}
	if len(s.perTenant) > 0 {
		r.Tenants = s.perTenant
	}
	return r
}

func summarize(lats []time.Duration) latencySummary {
	if len(lats) == 0 {
		return latencySummary{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	return latencySummary{
		Samples: len(sorted),
		P50ms:   pick(0.50),
		P99ms:   pick(0.99),
		P999ms:  pick(0.999),
	}
}

// gate returns a failure message, or "" when every enabled gate holds.
func gate(r *reportT, maxSubmitP99 time.Duration, fairnessTol float64) string {
	if r.HTTP5xx > 0 {
		return fmt.Sprintf("%d HTTP 5xx responses (first: %s)", r.HTTP5xx, r.FirstError)
	}
	if r.OtherErrors > 0 {
		return fmt.Sprintf("%d transport/unexpected errors (first: %s)", r.OtherErrors, r.FirstError)
	}
	if maxSubmitP99 > 0 && r.Submit.P99ms > float64(maxSubmitP99)/float64(time.Millisecond) {
		return fmt.Sprintf("submit p99 %.1fms exceeds bound %s", r.Submit.P99ms, maxSubmitP99)
	}
	if fairnessTol > 0 && len(r.Tenants) > 1 {
		sumW := 0
		for _, ts := range r.Tenants {
			sumW += ts.Weight
		}
		for name, ts := range r.Tenants {
			want := float64(ts.Weight) / float64(sumW)
			if math.Abs(ts.CompletionShare-want) > fairnessTol {
				return fmt.Sprintf("tenant %q completion share %.3f strays >%.2f from weight share %.3f",
					name, ts.CompletionShare, fairnessTol, want)
			}
		}
	}
	return ""
}

// peakRSS reads VmHWM (peak resident set) from /proc/<pid>/status.
func peakRSS(pid int) int64 {
	if pid <= 0 {
		return 0
	}
	b, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			kb, err := strconv.ParseInt(fields[1], 10, 64)
			if err == nil {
				return kb << 10
			}
		}
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aapm-loadgen:", err)
	os.Exit(1)
}
