// Command aapm-fleetbench measures the hierarchical fleet
// coordinator's throughput in node-ticks/sec and emits the result,
// optionally as a BENCH_fleet.json history entry.
//
// Each sample builds a fresh synthetic fleet (shared workload
// profiles, ideal measurement chain, no jitter — the memory-lean
// configuration the coordinator is specified against), runs it to
// completion through the allocation tree, and divides node-ticks
// executed by wall clock. The reported figure is the fastest of
// -count samples, with the full sample set recorded alongside it.
//
// Usage:
//
//	aapm-fleetbench [-nodes 100000] [-levels 3] [-fanout 64]
//	                [-ticks 120] [-workers 0] [-count 3] [-json]
//	                [-note "..."]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"aapm/internal/cluster"
)

// sample runs one full fleet and returns node-ticks/sec plus the
// result for shape reporting.
func sample(nodes, levels, fanout, ticks, workers int) (float64, *cluster.FleetResult, error) {
	cfg := cluster.FleetConfig{
		BudgetW: 30 * float64(nodes),
		Nodes:   cluster.SyntheticFleet(nodes, ticks),
		Seed:    7,
		Levels:  levels,
		Fanout:  fanout,
		Workers: workers,
	}
	start := time.Now()
	res, err := cluster.RunFleet(cfg)
	if err != nil {
		return 0, nil, err
	}
	wall := time.Since(start).Seconds()
	if wall <= 0 || res.NodeTicks == 0 {
		return 0, nil, fmt.Errorf("fleet run executed no measurable work")
	}
	return float64(res.NodeTicks) / wall, res, nil
}

func best(samples []float64) float64 {
	m := samples[0]
	for _, s := range samples[1:] {
		if s > m {
			m = s
		}
	}
	return m
}

// spreadPct is (max-min)/min across the samples, as a percentage —
// the scheduler-noise yardstick carried in every history entry.
func spreadPct(samples []float64) float64 {
	lo, hi := samples[0], samples[0]
	for _, s := range samples[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo == 0 {
		return 0
	}
	return (hi - lo) / lo * 100
}

// cpuModel reads the host CPU's model name for the history entry.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// entry mirrors one BENCH_fleet.json history element. node_ticks_per_sec
// is the best (highest) of the recorded samples.
type entry struct {
	Date            string    `json:"date"`
	BaseCommit      string    `json:"base_commit"`
	NodeTicksPerSec float64   `json:"node_ticks_per_sec"`
	Samples         []float64 `json:"samples_node_ticks_per_sec"`
	SpreadPct       float64   `json:"spread_pct"`
	Nodes           int       `json:"nodes"`
	Levels          int       `json:"levels"`
	Fanout          int       `json:"fanout"`
	Ticks           int       `json:"ticks"`
	Workers         int       `json:"workers"`
	Epochs          int       `json:"epochs"`
	CPU             string    `json:"cpu"`
	Note            string    `json:"note,omitempty"`
}

func run() error {
	nodes := flag.Int("nodes", 100_000, "fleet population size")
	levels := flag.Int("levels", 3, "allocation-tree depth")
	fanout := flag.Int("fanout", 64, "children per interior group")
	ticks := flag.Int("ticks", 120, "intervals per node")
	workers := flag.Int("workers", 0, "stepping workers (0 = GOMAXPROCS)")
	count := flag.Int("count", 3, "timed samples (best is reported)")
	asJSON := flag.Bool("json", false, "emit a BENCH_fleet.json history entry instead of text")
	note := flag.String("note", "", "note field for the -json history entry")
	flag.Parse()
	if *count < 1 {
		return fmt.Errorf("-count must be >= 1")
	}

	rates := make([]float64, 0, *count)
	var res *cluster.FleetResult
	for i := 0; i < *count; i++ {
		r, fr, err := sample(*nodes, *levels, *fanout, *ticks, *workers)
		if err != nil {
			return err
		}
		rates = append(rates, r)
		res = fr
		if !*asJSON {
			fmt.Printf("sample %d: %.2fM node-ticks/sec\n", i+1, r/1e6)
		}
	}
	bb := best(rates)

	if *asJSON {
		e := entry{
			Date:            time.Now().UTC().Format("2006-01-02"),
			BaseCommit:      gitHead(),
			NodeTicksPerSec: round0(bb),
			Samples:         round0s(rates),
			SpreadPct:       round1(spreadPct(rates)),
			Nodes:           res.Nodes,
			Levels:          res.Levels,
			Fanout:          res.Fanout,
			Ticks:           *ticks,
			Workers:         res.Workers,
			Epochs:          res.Epochs,
			CPU:             cpuModel(),
			Note:            *note,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(e)
	}
	fmt.Printf("fleet: %d nodes, %d level(s), fanout %d (groups per level %v), %d worker(s)\n",
		res.Nodes, res.Levels, res.Fanout, res.GroupsPerLevel, res.Workers)
	fmt.Printf("throughput: %.2fM node-ticks/sec (best of %d, spread %.1f%%)\n",
		bb/1e6, *count, spreadPct(rates))
	fmt.Printf("%d node-ticks, %d reallocation epochs per run\n", res.NodeTicks, res.Epochs)
	return nil
}

func round0(v float64) float64 { return float64(int64(v + 0.5)) }
func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func round0s(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = round0(v)
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aapm-fleetbench:", err)
		os.Exit(1)
	}
}
