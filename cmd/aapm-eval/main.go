// Command aapm-eval regenerates the paper's tables and figures — and
// the extension studies — on the simulated platform and prints them.
//
// Usage:
//
//	aapm-eval [-seed N] [-scale N] [-repeats N] [-par N] [-exp list]
//	          [-nodes N] [-levels N] [-fanout N] [-markdown] [-list]
//
// -exp selects a comma-separated subset by registry name (see -list);
// the default runs everything. -markdown emits one consolidated report
// instead of per-experiment text.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"aapm/internal/experiment"
	"aapm/internal/machine"
	"aapm/internal/report"
	"aapm/internal/telemetry"
)

func main() {
	seed := flag.Int64("seed", 7, "simulation seed")
	scale := flag.Int("scale", 1, "divide workload lengths by N for quicker runs")
	repeats := flag.Int("repeats", 1, "runs per configuration; median reported (paper uses 3)")
	par := flag.Int("par", 0, "bound on concurrent runs and cluster stepping workers (0 = GOMAXPROCS)")
	exps := flag.String("exp", "", "comma-separated experiment subset (default: all)")
	fleetNodes := flag.Int("nodes", 0, "fleetscale population size (0 = 100000, divided by -scale)")
	fleetLevels := flag.Int("levels", 0, "fleetscale allocation-tree depth (0 = 3)")
	fleetFanout := flag.Int("fanout", 0, "fleetscale children per group (0 = 64)")
	markdown := flag.Bool("markdown", false, "emit a single markdown report instead of per-experiment text")
	traceOut := flag.String("trace-out", "", "write every run's intervals as one Chrome trace-event JSON file (load in Perfetto)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		entries := experiment.Registry()
		sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
		for _, e := range entries {
			fmt.Printf("%-18s %s\n", e.Name, e.Describe)
		}
		return
	}

	opts := experiment.Options{
		Seed: *seed, ScaleDown: *scale, Repeats: *repeats, Parallelism: *par,
		FleetNodes: *fleetNodes, FleetLevels: *fleetLevels, FleetFanout: *fleetFanout,
	}
	var tw *telemetry.TraceEventWriter
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		tw = telemetry.NewTraceEventWriter(tf)
		defer func() {
			if err := tw.Close(); err != nil {
				fatal(err)
			}
			if err := tf.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "trace events written to %s (%d events)\n", *traceOut, tw.Events())
		}()
		// Every run becomes its own process track in the trace; the
		// writer is concurrency-safe, so parallel runs interleave fine.
		opts.Observer = func(workload, policy string) machine.Hook {
			return tw.RunHook(workload, policy)
		}
	}
	ctx, err := experiment.NewContext(opts)
	if err != nil {
		fatal(err)
	}
	if *markdown {
		if err := report.Generate(ctx, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	want := map[string]bool{}
	if *exps != "" {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}
	known := map[string]bool{}
	names := make([]string, 0, len(experiment.Registry()))
	for _, e := range experiment.Registry() {
		known[e.Name] = true
		names = append(names, e.Name)
	}
	sort.Strings(names)
	for name := range want {
		if !known[name] {
			fatal(fmt.Errorf("unknown experiment %q; available: %s", name, strings.Join(names, ", ")))
		}
	}
	for _, e := range experiment.Registry() {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		res, err := e.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.Name, err))
		}
		fmt.Printf("==== %s ====\n", e.Name)
		if err := res.Print(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aapm-eval:", err)
	os.Exit(1)
}
