// Command aapm-dash serves the interactive dashboard: run any suite
// workload under any governor spec and watch the power, frequency and
// temperature timelines in the browser. Every run also feeds the
// telemetry registry, scrapeable at /metrics (Prometheus text) and
// /api/telemetry (JSON).
//
// Usage:
//
//	aapm-dash [-addr :8080] [-pprof]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"aapm/internal/dash"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	flag.Parse()

	fmt.Printf("aapm dashboard listening on %s\n", *addr)
	fmt.Printf("  metrics:   http://localhost%s/metrics\n", *addr)
	if *pprofOn {
		fmt.Printf("  profiling: http://localhost%s/debug/pprof/\n", *addr)
	}
	h := dash.NewHandler(dash.Options{PProf: *pprofOn})
	if err := http.ListenAndServe(*addr, h); err != nil {
		fmt.Fprintln(os.Stderr, "aapm-dash:", err)
		os.Exit(1)
	}
}
