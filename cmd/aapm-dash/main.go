// Command aapm-dash serves the interactive dashboard: run any suite
// workload under any governor spec and watch the power, frequency and
// temperature timelines in the browser.
//
// Usage:
//
//	aapm-dash [-addr :8080]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"aapm/internal/dash"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	fmt.Printf("aapm dashboard listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, dash.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "aapm-dash:", err)
		os.Exit(1)
	}
}
