// Command aapm-run executes one workload under one policy on the
// simulated platform and prints a summary, optionally dumping the full
// 10 ms trace as CSV.
//
// Usage:
//
//	aapm-run -workload ammp -policy pm -limit 14.5
//	aapm-run -workload swim -policy ps -floor 0.8
//	aapm-run -workload crafty -policy static -freq 1800 -csv trace.csv
//	aapm-run -workload galgel -policy pm -limit 13.5 -metrics
//	aapm-run -workload mcf -policy pm -trace-out trace.json
//	aapm-run -workload-file my.json -policy ondemand
//	aapm-run -list
package main

import (
	"flag"
	"fmt"
	"os"

	"aapm/internal/control"
	"aapm/internal/machine"
	"aapm/internal/metrics"
	"aapm/internal/model"
	"aapm/internal/phase"
	"aapm/internal/sensor"
	"aapm/internal/spec"
	"aapm/internal/telemetry"
)

func main() {
	workload := flag.String("workload", "ammp", "SPEC workload name")
	workloadFile := flag.String("workload-file", "", "JSON workload definition (overrides -workload)")
	policy := flag.String("policy", "none", "policy: none, static, pm, ps, throttle, cruise, ondemand")
	govSpec := flag.String("gov", "", `full governor spec, e.g. "pm:limit=14.5,feedback=0.1" (overrides -policy)`)
	limit := flag.Float64("limit", 14.5, "PM power limit in watts")
	floor := flag.Float64("floor", 0.8, "PS performance floor (0..1]")
	exponent := flag.Float64("exponent", model.PaperExponent, "PS eq.3 exponent")
	freq := flag.Int("freq", 2000, "static policy frequency in MHz")
	seed := flag.Int64("seed", 7, "simulation seed")
	csvPath := flag.String("csv", "", "write the full 10 ms trace to this CSV file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing)")
	showMetrics := flag.Bool("metrics", false, "print staged-engine counters (ticks, transitions, stall, per-stage wall-clock)")
	list := flag.Bool("list", false, "list available workloads and exit")
	flag.Parse()

	if *list {
		for _, n := range spec.Names() {
			cls, _ := spec.ClassOf(n)
			fmt.Printf("%-10s %s\n", n, cls)
		}
		return
	}

	var w phase.Workload
	var err error
	if *workloadFile != "" {
		f, ferr := os.Open(*workloadFile)
		if ferr != nil {
			fatal(ferr)
		}
		w, err = phase.ParseWorkloadJSON(f)
		f.Close()
	} else {
		w, err = spec.ByName(*workload)
	}
	if err != nil {
		fatal(err)
	}
	m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: *seed})
	if err != nil {
		fatal(err)
	}

	// The collector counts over-limit intervals only when the policy
	// declares a power limit to judge against.
	var limitW float64
	var gov machine.Governor
	if *govSpec != "" {
		gov, err = control.Parse(*govSpec, m.Table())
		if err != nil {
			fatal(err)
		}
		runAndReport(m, w, gov, *csvPath, *traceOut, *showMetrics, 0)
		return
	}
	switch *policy {
	case "none":
	case "static":
		idx := m.Table().IndexOf(*freq)
		if idx < 0 {
			fatal(fmt.Errorf("no p-state with frequency %d MHz", *freq))
		}
		gov = control.NewStaticClock(idx, fmt.Sprintf("static%d", *freq))
	case "pm":
		gov, err = control.NewPerformanceMaximizer(control.PMConfig{LimitW: *limit})
		if err != nil {
			fatal(err)
		}
		limitW = *limit
	case "ps":
		gov, err = control.NewPowerSave(control.PSConfig{
			Floor: *floor,
			Perf:  model.PerfModel{Threshold: model.PaperDCUThreshold, Exponent: *exponent},
		})
		if err != nil {
			fatal(err)
		}
	case "throttle":
		gov, err = control.NewThrottleSave(control.ThrottleSaveConfig{Floor: *floor})
		if err != nil {
			fatal(err)
		}
	case "cruise":
		gov, err = control.NewCruiseControl(control.CruiseControlConfig{Slowdown: 1 - *floor})
		if err != nil {
			fatal(err)
		}
	case "ondemand":
		gov = &control.OnDemand{}
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	runAndReport(m, w, gov, *csvPath, *traceOut, *showMetrics, limitW)
}

func runAndReport(m *machine.Machine, w phase.Workload, gov machine.Governor, csvPath, traceOut string, showMetrics bool, limitW float64) {
	col := &metrics.Collector{LimitW: limitW}
	s, err := m.NewSession(w, gov)
	if err != nil {
		fatal(err)
	}
	if showMetrics {
		s.Subscribe(col)
		s.EnableStageTiming()
	}
	var tw *telemetry.TraceEventWriter
	var tf *os.File
	if traceOut != "" {
		tf, err = os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		tw = telemetry.NewTraceEventWriter(tf)
		s.Subscribe(tw.RunHook(w.Name, gov.Name()))
		// Stage spans need wall-clock stage timing on the bus.
		s.EnableStageTiming()
	}
	for {
		done, err := s.Step()
		if err != nil {
			fatal(err)
		}
		if done {
			break
		}
	}
	run := s.Result()
	if err := run.TimelineSummary(os.Stdout); err != nil {
		fatal(err)
	}
	if showMetrics {
		if err := col.Print(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fatal(err)
		}
		if err := run.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d rows)\n", csvPath, len(run.Rows))
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace events written to %s (%d events)\n", traceOut, tw.Events())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aapm-run:", err)
	os.Exit(1)
}
