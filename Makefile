# Tier-1 gate (what CI must keep green): build + full test suite.
.PHONY: test
test:
	go build ./...
	go test ./...

# Full suite under the race detector (the session loop, experiment
# parallelism and cluster lockstep all share state on purpose).
.PHONY: race
race:
	go test -race ./...

.PHONY: vet
vet:
	go vet ./...

# Every fuzz target for a short burst each; lengthen -fuzztime for a
# real campaign. Go allows one -fuzz target per package invocation.
FUZZTIME ?= 10s
.PHONY: fuzz-short
fuzz-short:
	go test ./internal/control -fuzz FuzzGovernorDecisions -fuzztime $(FUZZTIME)
	go test ./internal/control -fuzz FuzzParseGovernorSpec -fuzztime $(FUZZTIME)
	go test ./internal/faults -fuzz FuzzFaultPlan -fuzztime $(FUZZTIME)
	go test ./internal/trace -fuzz FuzzReadCSV -fuzztime $(FUZZTIME)
	go test ./internal/phase -fuzz FuzzParseWorkloadJSON -fuzztime $(FUZZTIME)

# Refresh the golden trace fixtures after an intentional trace change.
# Also covers the Prometheus exposition fixture in internal/telemetry.
.PHONY: golden-update
golden-update:
	go test -run TestGolden -update .
	go test -run TestPrometheusGolden -update ./internal/telemetry

# One-iteration telemetry overhead smoke: the hook-bus/observer cost
# benchmarks compile and run.
.PHONY: telemetry-smoke
telemetry-smoke:
	go test -run '^$$' -bench 'BenchmarkTelemetry|BenchmarkStagedTick' -benchtime 1x .

.PHONY: all
all: vet test race
