# Tier-1 gate (what CI must keep green): build + full test suite.
.PHONY: test
test:
	go build ./...
	go test ./...

# Full suite under the race detector (the session loop, experiment
# parallelism and cluster lockstep all share state on purpose).
.PHONY: race
race:
	go test -race ./...

.PHONY: vet
vet:
	go vet ./...

# Every fuzz target for a short burst each; lengthen -fuzztime for a
# real campaign. Go allows one -fuzz target per package invocation.
FUZZTIME ?= 10s
.PHONY: fuzz-short
fuzz-short:
	go test ./internal/control -fuzz FuzzGovernorDecisions -fuzztime $(FUZZTIME)
	go test ./internal/control -fuzz FuzzParseGovernorSpec -fuzztime $(FUZZTIME)
	go test ./internal/faults -fuzz FuzzFaultPlan -fuzztime $(FUZZTIME)
	go test ./internal/trace -fuzz FuzzReadCSV -fuzztime $(FUZZTIME)
	go test ./internal/phase -fuzz FuzzParseWorkloadJSON -fuzztime $(FUZZTIME)
	go test ./internal/kernel -fuzz FuzzBatchStep -fuzztime $(FUZZTIME)
	go test ./internal/alloc -fuzz FuzzWaterfill -fuzztime $(FUZZTIME)

# Refresh the golden trace fixtures after an intentional trace change.
# Also covers the Prometheus exposition fixture in internal/telemetry.
.PHONY: golden-update
golden-update:
	go test -run TestGolden -update .
	go test -run TestPrometheusGolden -update ./internal/telemetry

# One-iteration telemetry overhead smoke: the hook-bus/observer cost
# benchmarks compile and run.
.PHONY: telemetry-smoke
telemetry-smoke:
	go test -run '^$$' -bench 'BenchmarkTelemetry|BenchmarkStagedTick' -benchtime 1x .

# End-to-end smoke of the run service: build aapm-serve, start it on a
# loopback port, submit the golden-config job over HTTP, poll until
# done, and assert the result and the serve metrics look sane.
SERVE_SMOKE_ADDR ?= 127.0.0.1:18080
.PHONY: serve-smoke
serve-smoke:
	go build -o /tmp/aapm-serve ./cmd/aapm-serve
	@set -e; \
	/tmp/aapm-serve -addr $(SERVE_SMOKE_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do curl -sf $(SERVE_SMOKE_ADDR)/metrics >/dev/null && break; sleep 0.1; done; \
	id=$$(curl -sf -X POST $(SERVE_SMOKE_ADDR)/api/jobs \
		-d '{"workload":"ammp","governor":"pm:limit=14.5","seed":1,"iterations":1}' | jq -r .id); \
	echo "submitted $$id"; \
	state=queued; \
	for i in $$(seq 1 100); do \
		state=$$(curl -sf $(SERVE_SMOKE_ADDR)/api/jobs/$$id | jq -r .state); \
		case $$state in done|failed|canceled|aborted) break;; esac; \
		sleep 0.1; \
	done; \
	[ "$$state" = done ] || { echo "job ended $$state"; exit 1; }; \
	avg=$$(curl -sf $(SERVE_SMOKE_ADDR)/api/jobs/$$id/result | jq .avg_power_w); \
	echo "avg_power_w=$$avg"; \
	awk -v a="$$avg" 'BEGIN { exit !(a > 0) }' || { echo "degenerate avg power"; exit 1; }; \
	curl -sf $(SERVE_SMOKE_ADDR)/metrics | grep -q aapm_serve_queue_depth \
		|| { echo "metrics missing the serve family"; exit 1; }; \
	echo "serve smoke OK"

# Observability smoke: against a live aapm-serve with tracing forced
# on, /healthz answers healthy, /api/slo lists the default objectives,
# a submitted fleet job's spans are retrievable from /api/trace/{id}
# (including the Perfetto rendering), and every NDJSON event line
# carries the trace ID and sequence number.
OBS_SMOKE_ADDR ?= 127.0.0.1:18082
.PHONY: obs-smoke
obs-smoke:
	go build -o /tmp/aapm-serve ./cmd/aapm-serve
	@set -e; \
	/tmp/aapm-serve -addr $(OBS_SMOKE_ADDR) -trace-sample 1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do curl -sf $(OBS_SMOKE_ADDR)/healthz >/dev/null && break; sleep 0.1; done; \
	curl -sf $(OBS_SMOKE_ADDR)/healthz | jq -e '.healthy == true' >/dev/null \
		|| { echo "healthz not healthy"; exit 1; }; \
	curl -sf $(OBS_SMOKE_ADDR)/api/slo | jq -e '.healthy == true and ([.objectives[].name] | contains(["submit_p99","error_rate"]))' >/dev/null \
		|| { echo "slo objectives missing"; exit 1; }; \
	id=$$(curl -sf -X POST $(OBS_SMOKE_ADDR)/api/jobs \
		-d '{"workload":"gzip","seed":7,"nodes":8,"budget_w":120,"levels":2,"fanout":4,"iterations":1}' | jq -r .id); \
	echo "submitted $$id"; \
	state=queued; \
	for i in $$(seq 1 100); do \
		state=$$(curl -sf $(OBS_SMOKE_ADDR)/api/jobs/$$id | jq -r .state); \
		case $$state in done|failed|canceled|aborted) break;; esac; \
		sleep 0.1; \
	done; \
	[ "$$state" = done ] || { echo "job ended $$state"; exit 1; }; \
	curl -sf $(OBS_SMOKE_ADDR)/api/trace/$$id | jq -e \
		'.sampled == true and ([.spans[].name] | (contains(["intake","queue-wait","run","shard-step"])))' >/dev/null \
		|| { echo "trace spans missing"; exit 1; }; \
	curl -sf "$(OBS_SMOKE_ADDR)/api/trace/$$id?format=perfetto" | jq -e 'map(select(.ph == "X")) | length > 0' >/dev/null \
		|| { echo "perfetto rendering empty"; exit 1; }; \
	curl -sf $(OBS_SMOKE_ADDR)/api/jobs/$$id/events | head -1 | jq -e '.seq == 1 and .trace != ""' >/dev/null \
		|| { echo "event stream missing seq/trace"; exit 1; }; \
	echo "obs smoke OK"

# Span-propagation and SLO suites under the race detector, exactly as
# CI runs them.
.PHONY: obs-race
obs-race:
	go test -race -count=1 ./internal/obs/
	go test -race -count=1 -run 'TestTraceFollowsFleetJob|TestHealthzFlipsOnSLOBurn|TestTenantSeriesCapCollapsesToOther' ./internal/serve/
	go test -race -count=1 -run 'TestClusterTraceSpans|TestFleetTraceSpansPerLevel' ./internal/cluster/

# Submit-latency benchmark for the run service's cache-hit path; the
# committed BENCH_serve.json tracks datapoints over time.
.PHONY: serve-bench
serve-bench:
	go test -run '^$$' -bench BenchmarkServeSubmitLatency -benchtime 2s ./internal/serve/

# Sustained-load smoke: aapm-loadgen drives a bounded two-tenant
# aapm-serve with open-loop arrivals and gates on zero 5xx plus a p99
# submit-latency bound. Short by design; lengthen -duration and raise
# -rate for a real soak (see BENCH_serve.json for the recorded
# fairness run).
SERVE_LOAD_ADDR ?= 127.0.0.1:18081
.PHONY: serve-load-smoke
serve-load-smoke:
	go build -o /tmp/aapm-serve ./cmd/aapm-serve
	go build -o /tmp/aapm-loadgen ./cmd/aapm-loadgen
	@set -e; \
	/tmp/aapm-serve -addr $(SERVE_LOAD_ADDR) -workers 2 -queue 512 \
		-max-jobs 128 -max-result-bytes 16777216 -tenant-weights acme=2,dunder=1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do curl -sf $(SERVE_LOAD_ADDR)/metrics >/dev/null && break; sleep 0.1; done; \
	/tmp/aapm-loadgen -addr http://$(SERVE_LOAD_ADDR) -rate 100 -duration 5s \
		-profile flash -tenants acme=2,dunder=1 -iterations 10 -seed-base 900000 \
		-server-pid $$pid -settle 60s -max-submit-p99 250ms -json /tmp/loadgen-smoke.json; \
	echo "serve load smoke OK"

# Intent-orchestration smoke: aapm-serve hosts a resident fleet, a
# declared power cap converges through the reconcile loop, and an
# infeasible floor bounces with HTTP 422 plus a machine-readable
# reason code.
INTENT_SMOKE_ADDR ?= 127.0.0.1:18083
.PHONY: intent-smoke
intent-smoke:
	go build -o /tmp/aapm-serve ./cmd/aapm-serve
	@set -e; \
	/tmp/aapm-serve -addr $(INTENT_SMOKE_ADDR) -fleet-nodes 8 -fleet-fanout 4 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do curl -sf $(INTENT_SMOKE_ADDR)/api/intents >/dev/null && break; sleep 0.1; done; \
	id=$$(curl -sf -X POST $(INTENT_SMOKE_ADDR)/api/intents \
		-d '{"kind":"cap","level":1,"group":0,"watts":30}' | jq -r .id); \
	echo "declared cap $$id"; \
	state=converging; \
	for i in $$(seq 1 150); do \
		state=$$(curl -sf $(INTENT_SMOKE_ADDR)/api/intents/$$id/status | jq -r .state); \
		[ "$$state" = converged ] && break; \
		sleep 0.1; \
	done; \
	[ "$$state" = converged ] || { echo "cap never converged"; exit 1; }; \
	obs=$$(curl -sf $(INTENT_SMOKE_ADDR)/api/intents/$$id/status | jq .observed_w); \
	echo "converged at $$obs W"; \
	awk -v o="$$obs" 'BEGIN { exit !(o <= 30.000001) }' \
		|| { echo "converged state over the 30 W cap"; exit 1; }; \
	code=$$(curl -s -o /tmp/intent-reject.json -w '%{http_code}' -X POST \
		$(INTENT_SMOKE_ADDR)/api/intents -d '{"kind":"floor","level":1,"group":1,"watts":500}'); \
	[ "$$code" = 422 ] || { echo "infeasible floor answered $$code, want 422"; exit 1; }; \
	jq -e '.reason.code == "floor-exceeds-cap" and .reason.detail != ""' /tmp/intent-reject.json >/dev/null \
		|| { echo "422 without structured reason: $$(cat /tmp/intent-reject.json)"; exit 1; }; \
	echo "intent smoke OK"

# Intent reconcile, admission edge-case, and closed-loop suites under
# the race detector, exactly as CI runs them.
.PHONY: intent-race
intent-race:
	go test -race -count=1 ./internal/intent/
	go test -race -count=1 -run 'TestIntentAPI|TestFleetHost|TestFleetHeterogeneousFloors|TestFleetGroupsValidation' ./internal/serve/ ./internal/cluster/

# Sustained-churn regression (bounded store under ≫MaxJobs distinct
# specs) under the race detector, exactly as CI runs it.
.PHONY: serve-churn
serve-churn:
	go test -race -run 'TestSustainedChurn|TestEvictionPrefersLRUAndSkipsLive|TestMaxResultBytesEviction' -count=1 ./internal/serve/

# Batch tick kernel throughput versus the staged reference paths; the
# committed BENCH_tick.json tracks the trajectory. Append a datapoint
# with `go run ./cmd/aapm-tickbench -json`.
.PHONY: tick-bench
tick-bench:
	go run ./cmd/aapm-tickbench -count 3

# Allocation gate + batch differential, exactly as CI runs them: the
# specialized bodies must stay at zero heap allocations per tick and
# byte-identical to the staged engine.
.PHONY: tick-gate
tick-gate:
	go test -run 'TestBatchTickAllocs|TestBatchMatchesStaged' ./internal/kernel/
	go test -run '^$$' -bench BenchmarkBatchTick -benchtime 1000x -benchmem .

# Fleet-scale smoke: a 100k-node, multi-epoch hierarchical run must
# finish and stay inside the tested per-node memory budget (the
# TotalAlloc gate in TestFleetMemoryBudget), plus the one-level and
# multi-level determinism differentials.
.PHONY: fleet-smoke
fleet-smoke:
	go test -run 'TestFleetOneLevelMatchesFlat|TestFleetMultiLevelDeterministic' ./internal/cluster/
	go test -run TestFleetMemoryBudget -count=1 ./internal/cluster/

# Hierarchical fleet coordinator throughput in node-ticks/sec; the
# committed BENCH_fleet.json tracks the trajectory. Append a datapoint
# with `go run ./cmd/aapm-fleetbench -json`.
.PHONY: fleet-bench
fleet-bench:
	go run ./cmd/aapm-fleetbench -count 3

.PHONY: all
all: vet test race
