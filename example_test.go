package aapm_test

import (
	"fmt"

	"aapm"
)

// Running a workload under the paper's PerformanceMaximizer: the
// highest frequency whose predicted power fits the limit.
func Example_performanceMaximizer() {
	m, _ := aapm.NewPlatform(aapm.PlatformConfig{Seed: 1})
	w, _ := aapm.Workload("sixtrack")
	pm, _ := aapm.NewPerformanceMaximizer(aapm.PMConfig{LimitW: 17.5})
	run, _ := m.Run(w, pm)
	// sixtrack is core-bound but low-power: PM lets it keep 2 GHz.
	fmt.Println(run.Rows[len(run.Rows)-1].FreqMHz)
	// Output: 2000
}

// PowerSave picks the lowest frequency that keeps predicted
// performance above the floor; deep memory-bound workloads drop far.
func Example_powerSave() {
	m, _ := aapm.NewPlatform(aapm.PlatformConfig{Seed: 1})
	w, _ := aapm.Workload("swim")
	ps, _ := aapm.NewPowerSave(aapm.PSConfig{Floor: 0.8})
	run, _ := m.Run(w, ps)
	fmt.Println(run.Rows[len(run.Rows)-1].FreqMHz)
	// Output: 800
}

// The published Table II power model estimates watts from the decoded-
// instructions-per-cycle counter.
func ExamplePaperPowerModel() {
	pm := aapm.PaperPowerModel()
	i := pm.Table().IndexOf(2000)
	fmt.Printf("%.2f W\n", pm.Estimate(i, 1.935))
	// Output: 17.78 W
}

// Eq. 3 classifies samples by DCU stalls per instruction and projects
// IPC across p-states.
func ExamplePaperPerfModel() {
	m := aapm.PaperPerfModel()
	fmt.Println(m.MemoryBound(3.0), m.MemoryBound(0.2))
	fmt.Printf("%.3f\n", m.ProjectIPC(0.2, 3.0, 2000, 1000))
	// Output:
	// true false
	// 0.351
}

// The platform's p-state table carries the paper's voltage/frequency
// pairs.
func ExamplePentiumM755() {
	t := aapm.PentiumM755()
	fmt.Println(t.Len(), t.Min(), t.Max())
	// Output: 8 600MHz@0.998V 2000MHz@1.340V
}
