package aapm

import (
	"strings"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	m, err := NewPlatform(PlatformConfig{Seed: 1, Chain: NIChain()})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Workload("ammp")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run(w, pm)
	if err != nil {
		t.Fatal(err)
	}
	if run.Duration <= 0 || run.AvgPowerW() <= 0 {
		t.Errorf("degenerate run: %v, %.2fW", run.Duration, run.AvgPowerW())
	}
	// PM must respect the limit on average.
	if run.AvgPowerW() > 14.5 {
		t.Errorf("average power %.2fW above the 14.5W limit", run.AvgPowerW())
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 26 {
		t.Fatalf("WorkloadNames = %d entries", len(names))
	}
	if _, err := Workload("not-a-benchmark"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPentiumM755Accessor(t *testing.T) {
	tab := PentiumM755()
	if tab.Len() != 8 || tab.Max().FreqMHz != 2000 {
		t.Errorf("table = %v", tab.States())
	}
}

func TestPaperModels(t *testing.T) {
	pm := PaperPowerModel()
	i := pm.Table().IndexOf(2000)
	if got := pm.Estimate(i, 0); got != 12.11 {
		t.Errorf("beta at 2000 MHz = %g, want 12.11", got)
	}
	if m := PaperPerfModel(); m.Threshold != 1.21 || m.Exponent != 0.81 {
		t.Errorf("perf model = %+v", m)
	}
}

func TestPowerSaveViaFacade(t *testing.T) {
	m, err := NewPlatform(PlatformConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Workload("swim")
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Run(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPowerSave(PSConfig{Floor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run(w, ps)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(run.Policy, "PS(") {
		t.Errorf("policy label = %q", run.Policy)
	}
	save := 1 - run.EnergyJ/base.EnergyJ
	if save < 0.4 {
		t.Errorf("swim PS(80%%) energy savings = %.1f%%, want large (memory-bound)", save*100)
	}
	loss := 1 - base.Duration.Seconds()/run.Duration.Seconds()
	if loss > 0.201 {
		t.Errorf("swim PS(80%%) loss = %.1f%% violates floor", loss*100)
	}
}

func TestStaticClockFacade(t *testing.T) {
	m, _ := NewPlatform(PlatformConfig{Seed: 1})
	w, _ := Workload("gzip")
	sc := NewStaticClock(m.Table().IndexOf(1000), "static1000")
	run, err := m.Run(w, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range run.Rows {
		if row.FreqMHz != 1000 {
			t.Fatalf("static run left 1000 MHz: %d", row.FreqMHz)
		}
	}
}

func TestExperimentsFacade(t *testing.T) {
	ex, err := NewExperiments(ExperimentOptions{Seed: 3, ScaleDown: 8})
	if err != nil {
		t.Fatal(err)
	}
	r, err := ex.Fig2PstatePerformance()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Errorf("fig2 rows = %d", len(r.Rows))
	}
}

func TestFacadeExtensions(t *testing.T) {
	tc := PentiumMThermal()
	if tc.AmbientC != 45 {
		t.Errorf("thermal ambient = %g", tc.AmbientC)
	}
	tg, err := NewThermalGuard(ThermalGuardConfig{LimitC: 75, Thermal: tc})
	if err != nil {
		t.Fatal(err)
	}
	if tg.Name() == "" {
		t.Error("thermal guard unnamed")
	}
	ts, err := NewThrottleSave(ThrottleSaveConfig{Floor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Name() == "" {
		t.Error("throttle save unnamed")
	}
	if got := len(MixWorkloads()); got != 4 {
		t.Errorf("mix workloads = %d", got)
	}
}

func TestFacadeCluster(t *testing.T) {
	var nodes []ClusterNode
	for _, n := range []string{"gzip", "mesa"} {
		w, err := Workload(n)
		if err != nil {
			t.Fatal(err)
		}
		w.Iterations = 3
		nodes = append(nodes, ClusterNode{Workload: w})
	}
	res, err := RunCluster(ClusterConfig{BudgetW: 30, Nodes: nodes, Seed: 5, Chain: NIChain()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 || res.MachineSeconds <= 0 {
		t.Errorf("cluster result = %+v", res)
	}
}

func TestFacadeSessionAPI(t *testing.T) {
	m, err := NewPlatform(PlatformConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Workload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = 2
	s, err := m.NewSession(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if s.Result().Duration <= 0 {
		t.Error("degenerate session result")
	}
}
