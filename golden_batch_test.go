package aapm

// Golden-trace acceptance for the batch tick kernel at the facade
// level: the same pinned fixtures the staged engine is checked
// against, re-run through NewBatch/RunBatch. The kernel's specialized
// bodies and its generic (hook-carrying) body must both reproduce the
// staged traces byte-for-byte — the fixtures stay owned by the staged
// tests (TestGoldenPMTrace), so -update runs skip these.

import (
	"bytes"
	"io"
	"testing"
)

// goldenBatchRun executes the canonical fixture configuration (one
// iteration of ammp, NI chain, seed 1) through the batch kernel.
func goldenBatchRun(t *testing.T, gov Governor, opts BatchOptions) (*Run, *BatchState) {
	t.Helper()
	w, err := Workload("ammp")
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = 1
	m, err := NewPlatform(PlatformConfig{Chain: NIChain(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts.RetainTraces = true
	b, err := NewBatch([]BatchNode{{Machine: m, Workload: w, Governor: gov}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	return b.Result(0), b
}

func TestGoldenPMTraceBatch(t *testing.T) {
	if *update {
		t.Skip("fixture owned by TestGoldenPMTrace")
	}
	pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	if err != nil {
		t.Fatal(err)
	}
	run, b := goldenBatchRun(t, pm, BatchOptions{})
	if b.Kind() != "pm" {
		t.Fatalf("golden PM run selected step body %q, want the specialized pm body", b.Kind())
	}
	checkGolden(t, "golden_pm_ammp.csv", run)
}

func TestGoldenPSTraceBatch(t *testing.T) {
	if *update {
		t.Skip("fixture owned by TestGoldenPSTrace")
	}
	ps, err := NewPowerSave(PSConfig{Floor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	run, b := goldenBatchRun(t, ps, BatchOptions{})
	if b.Kind() != "psave" {
		t.Fatalf("golden PS run selected step body %q, want the specialized psave body", b.Kind())
	}
	checkGolden(t, "golden_ps_ammp.csv", run)
}

// TestGoldenTraceWithTelemetryBatch is the batch analogue of
// TestGoldenTraceWithTelemetry: observer hooks demote the batch to its
// generic body, which must still replicate the staged event order —
// same fixture bytes, exporters fully fed.
func TestGoldenTraceWithTelemetryBatch(t *testing.T) {
	if *update {
		t.Skip("fixture owned by TestGoldenPMTrace")
	}
	pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTelemetryRegistry()
	tw := NewTraceEventWriter(io.Discard)
	run, b := goldenBatchRun(t, pm, BatchOptions{
		Hooks: func(int) []Hook {
			return []Hook{
				NewTelemetryObserver(reg, "golden", "pm"),
				tw.RunHook("golden", "pm"),
			}
		},
	})
	if b.Kind() != "generic" {
		t.Fatalf("hook-carrying run selected step body %q, want generic", b.Kind())
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() == 0 {
		t.Fatal("trace exporter saw no events; test is vacuous")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("registry empty after observed run; test is vacuous")
	}
	checkGolden(t, "golden_pm_ammp.csv", run)
}
